"""Tests for TCP buffers and reassembly."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, TransportError
from repro.transport.tcp.buffers import ReceiveReassembly, SendBuffer


class TestSendBuffer:
    def test_write_and_ack_accounting(self):
        buf = SendBuffer(limit_bytes=1000)
        assert buf.write(600) == 600
        assert buf.buffered_bytes == 600
        assert buf.free_bytes == 400
        buf.acked(200)
        assert buf.buffered_bytes == 400
        assert buf.free_bytes == 600

    def test_write_clips_to_free_space(self):
        buf = SendBuffer(limit_bytes=100)
        assert buf.write(250) == 100
        assert buf.write(10) == 0

    def test_available_from_offset(self):
        buf = SendBuffer()
        buf.write(500)
        assert buf.available_from(0) == 500
        assert buf.available_from(200) == 300
        assert buf.available_from(500) == 0

    def test_ack_beyond_written_rejected(self):
        buf = SendBuffer()
        buf.write(10)
        with pytest.raises(TransportError):
            buf.acked(11)

    def test_ack_is_monotone(self):
        buf = SendBuffer()
        buf.write(100)
        buf.acked(50)
        buf.acked(30)  # stale cumulative ack, ignored
        assert buf.buffered_bytes == 50

    def test_write_after_close_rejected(self):
        buf = SendBuffer()
        buf.close()
        with pytest.raises(TransportError):
            buf.write(1)

    def test_negative_write_rejected(self):
        with pytest.raises(ConfigurationError):
            SendBuffer().write(-1)


class TestReceiveReassembly:
    def test_in_order_delivery(self):
        r = ReceiveReassembly()
        newly, in_order = r.offer(0, 100)
        assert (newly, in_order) == (100, True)
        assert r.rcv_nxt == 100

    def test_gap_buffers_out_of_order(self):
        r = ReceiveReassembly()
        newly, in_order = r.offer(100, 50)
        assert (newly, in_order) == (0, False)
        assert r.out_of_order_bytes == 50
        newly, in_order = r.offer(0, 100)
        assert (newly, in_order) == (150, True)
        assert r.rcv_nxt == 150
        assert r.out_of_order_bytes == 0

    def test_duplicate_is_ignored(self):
        r = ReceiveReassembly()
        r.offer(0, 100)
        newly, in_order = r.offer(0, 100)
        assert (newly, in_order) == (0, False)

    def test_overlapping_segment_counts_once(self):
        r = ReceiveReassembly()
        r.offer(0, 100)
        newly, _ = r.offer(50, 100)
        assert newly == 50
        assert r.rcv_nxt == 150

    def test_adjacent_out_of_order_segments_merge(self):
        r = ReceiveReassembly()
        r.offer(100, 50)
        r.offer(150, 50)
        newly, _ = r.offer(0, 100)
        assert newly == 200

    def test_non_zero_initial_rcv_nxt(self):
        r = ReceiveReassembly(rcv_nxt=1)
        newly, in_order = r.offer(1, 512)
        assert (newly, in_order) == (512, True)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            ReceiveReassembly().offer(0, -1)

    @given(
        chunks=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),  # chunk index
                st.integers(min_value=1, max_value=3),  # chunk count
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_rcv_nxt_is_monotone_and_bounded(self, chunks):
        r = ReceiveReassembly()
        chunk = 100
        total_end = 0
        previous = 0
        for index, count in chunks:
            r.offer(index * chunk, count * chunk)
            total_end = max(total_end, (index + count) * chunk)
            assert r.rcv_nxt >= previous
            assert r.rcv_nxt <= total_end
            previous = r.rcv_nxt

    @given(
        order=st.permutations(list(range(12))),
    )
    def test_any_arrival_order_delivers_everything(self, order):
        r = ReceiveReassembly()
        chunk = 64
        delivered = 0
        for index in order:
            newly, _ = r.offer(index * chunk, chunk)
            delivered += newly
        assert delivered == 12 * chunk
        assert r.rcv_nxt == 12 * chunk
