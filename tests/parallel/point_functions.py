"""Importable point functions for engine tests (dotted-path resolvable)."""

from repro.errors import SimulationError

#: Seeds below this raise, so a reseeded retry (step >= the threshold)
#: lands in the passing region — mirrors a seed-sensitive livelock.
FLAKY_THRESHOLD = 100


def square_point(value: int) -> int:
    return value * value


def flaky_point(seed: int) -> int:
    if seed < FLAKY_THRESHOLD:
        raise SimulationError(f"seed {seed} livelocked")
    return seed


def always_fails_point(seed: int) -> int:
    raise ValueError("deterministic bug")


def slow_point(seed: int) -> int:
    import time

    time.sleep(5.0)
    return seed


def crash_point(seed: int) -> int:
    """Hard-crash the worker (no Python cleanup) below the threshold.

    A reseeded retry (step >= the threshold) lands in the passing
    region — mirrors an OOM-kill / segfault that a fresh seed avoids.
    """
    if seed < FLAKY_THRESHOLD:
        import os

        os._exit(17)
    return seed


def always_crash_point(seed: int) -> int:
    """Hard-crash the worker on every attempt."""
    import os

    os._exit(23)


def hang_point(seed: int) -> int:
    """Hang far past any test deadline below the threshold."""
    if seed < FLAKY_THRESHOLD:
        import time

        time.sleep(60.0)
    return seed


def sleepy_square_point(value: int, delay_s: float = 0.0) -> int:
    """``square_point`` with a wall-clock cost, for interrupt tests."""
    import time

    if delay_s > 0.0:
        time.sleep(delay_s)
    return value * value


def fail_once_point(value: int, marker_dir: str) -> int:
    """Hard-crash the first time each ``value`` is seen, succeed after.

    A marker file under ``marker_dir`` records the first visit, so a
    resumed (or retried) run completes deterministically — the chaos
    tests use this to compare interrupted-then-resumed output with an
    uninterrupted run bit-for-bit.
    """
    import os

    marker = os.path.join(marker_dir, f"seen-{value}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("seen\n")
        os._exit(9)
    return value * value
