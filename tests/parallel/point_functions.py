"""Importable point functions for engine tests (dotted-path resolvable)."""

from repro.errors import SimulationError

#: Seeds below this raise, so a reseeded retry (step >= the threshold)
#: lands in the passing region — mirrors a seed-sensitive livelock.
FLAKY_THRESHOLD = 100


def square_point(value: int) -> int:
    return value * value


def flaky_point(seed: int) -> int:
    if seed < FLAKY_THRESHOLD:
        raise SimulationError(f"seed {seed} livelocked")
    return seed


def always_fails_point(seed: int) -> int:
    raise ValueError("deterministic bug")


def slow_point(seed: int) -> int:
    import time

    time.sleep(5.0)
    return seed
