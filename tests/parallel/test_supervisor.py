"""Chaos suite for the supervised executor.

Hard crashes (``os._exit``), hangs past the deadline, mid-sweep
exceptions and SIGINT — the supervisor must detect every one, keep the
journal valid, never lose completed work, and make ``resume`` produce
results bit-identical to an uninterrupted run.

Crash-grade isolation needs the pooled path, which requires ``jobs >=
2`` *and* at least two outstanding points (a single miss always runs
in-process); every crash/hang test here is shaped accordingly.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError, SweepInterrupted
from repro.experiments.runner import RunnerConfig
from repro.parallel import (
    PointFailure,
    SweepCache,
    SweepPoint,
    load_journal,
    run_sweep,
    supervise_sweep,
)

SQUARE = "tests.parallel.point_functions:square_point"
FAILS = "tests.parallel.point_functions:always_fails_point"
FLAKY = "tests.parallel.point_functions:flaky_point"
CRASH = "tests.parallel.point_functions:crash_point"
ALWAYS_CRASH = "tests.parallel.point_functions:always_crash_point"
HANG = "tests.parallel.point_functions:hang_point"
FAIL_ONCE = "tests.parallel.point_functions:fail_once_point"

#: No backoff in tests: retries re-dispatch immediately.
FAST = {"backoff_base_s": 0.0, "backoff_max_s": 0.0}


def point_lines(path: Path) -> list[dict]:
    lines = []
    for line in path.read_text().splitlines():
        document = json.loads(line)  # every line must be valid JSON
        if document.get("type") == "point":
            lines.append(document)
    return lines


class TestCrashRecovery:
    def test_dead_worker_respawned_and_point_retried(self):
        # crash_point(seed=1) takes the whole worker down with os._exit;
        # the supervisor must notice the EOF, respawn, and retry with a
        # perturbed seed that lands in the passing region.
        points = [
            SweepPoint(CRASH, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 3}),
        ]
        policy = RunnerConfig(max_retries=1, retry_seed_step=1000, **FAST)
        assert run_sweep(points, jobs=2, policy=policy) == [1001, 9]

    def test_always_crashing_point_skipped_with_journal(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        points = [
            SweepPoint(ALWAYS_CRASH, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 2}),
            SweepPoint(SQUARE, {"value": 3}),
        ]
        policy = RunnerConfig(max_retries=1, retry_seed_step=1000, **FAST)
        report_stream = io.StringIO()
        outcome = supervise_sweep(
            points,
            jobs=2,
            policy=policy,
            journal=str(journal_path),
            on_error="skip",
            report_stream=report_stream,
        )
        assert outcome.results == [None, 4, 9]
        assert outcome.report.ok == 2
        assert outcome.report.failed == 1
        assert outcome.report.failures[0].status == "crashed"
        assert outcome.report.failures[0].attempts == 2
        assert "sweep report" in report_stream.getvalue()
        statuses = {
            record["index"]: record["status"]
            for record in point_lines(journal_path)
        }
        assert statuses == {0: "crashed", 1: "ok", 2: "ok"}

    def test_degrade_leaves_typed_failure_record(self):
        points = [
            SweepPoint(ALWAYS_CRASH, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 5}),
        ]
        policy = RunnerConfig(max_retries=0, **FAST)
        outcome = supervise_sweep(
            points,
            jobs=2,
            policy=policy,
            on_error="degrade",
            report_stream=io.StringIO(),
        )
        failure, value = outcome.results
        assert value == 25
        assert isinstance(failure, PointFailure)
        assert failure.status == "crashed"
        assert failure.index == 0
        assert "exit code" in failure.error

    def test_hung_worker_killed_at_deadline_and_retried(self):
        # hang_point(seed=1) sleeps 60s; the 1s deadline kills the
        # worker and the reseeded retry completes immediately.
        points = [
            SweepPoint(HANG, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 4}),
        ]
        policy = RunnerConfig(
            timeout_s=1.0, max_retries=1, retry_seed_step=1000, **FAST
        )
        started = time.monotonic()
        assert run_sweep(points, jobs=2, policy=policy) == [1001, 16]
        assert time.monotonic() - started < 30.0  # never waited the 60s

    def test_hung_worker_timeout_recorded_when_retries_exhausted(
        self, tmp_path
    ):
        journal_path = tmp_path / "sweep.jsonl"
        points = [
            SweepPoint(HANG, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 4}),
        ]
        policy = RunnerConfig(timeout_s=0.5, max_retries=0, **FAST)
        outcome = supervise_sweep(
            points,
            jobs=2,
            policy=policy,
            journal=str(journal_path),
            on_error="skip",
            report_stream=io.StringIO(),
        )
        assert outcome.results == [None, 16]
        (record,) = [
            line for line in point_lines(journal_path) if line["index"] == 0
        ]
        assert record["status"] == "timeout"
        assert record["error_type"] == "WatchdogTimeout"


class TestCompletedWorkSurvives:
    def test_raise_policy_still_caches_completed_points(self, tmp_path):
        # The lost-work bug: a failure used to propagate before any
        # completed result reached the cache.  Now successes persist as
        # they finish, so only the never-started tail is missing.
        cache = SweepCache(root=tmp_path / "cache")
        points = [
            SweepPoint(SQUARE, {"value": 2}),
            SweepPoint(FAILS, {"seed": 1}),
            SweepPoint(SQUARE, {"value": 4}),
        ]
        with pytest.raises(ValueError, match="deterministic bug"):
            run_sweep(points, jobs=1, cache=cache)
        hit, value = cache.lookup(SQUARE, {"value": 2})
        assert hit and value == 4
        hit, _ = cache.lookup(SQUARE, {"value": 4})
        assert not hit  # raise-mode stops dispatching after the failure

    def test_pooled_raise_keeps_other_completed_points(self, tmp_path):
        cache = SweepCache(root=tmp_path / "cache")
        points = [
            SweepPoint(SQUARE, {"value": 2}),
            SweepPoint(SQUARE, {"value": 3}),
            SweepPoint(FAILS, {"seed": 1}),
        ]
        with pytest.raises(ExperimentError, match="deterministic bug"):
            run_sweep(points, jobs=2, cache=cache)
        assert cache.lookup(SQUARE, {"value": 2}) == (True, 4)
        assert cache.lookup(SQUARE, {"value": 3}) == (True, 9)


class TestResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ExperimentError, match="resume needs a journal"):
            run_sweep([SweepPoint(SQUARE, {"value": 1})], resume=True)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ExperimentError, match="on_error"):
            run_sweep([SweepPoint(SQUARE, {"value": 1})], on_error="explode")

    def test_resume_skips_completed_points(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        points = [SweepPoint(SQUARE, {"value": v}) for v in range(4)]
        first = run_sweep(points, journal=str(journal_path))
        assert first == [0, 1, 4, 9]
        before = len(point_lines(journal_path))
        # No cache: resume must rebuild the results from journal values.
        again = run_sweep(
            points, journal=str(journal_path), resume=True
        )
        assert again == first
        assert len(point_lines(journal_path)) == before  # nothing re-ran

    def test_resume_ignores_records_from_other_code_versions(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        cache_v1 = SweepCache(root=tmp_path / "c1", version_tag="v1")
        cache_v2 = SweepCache(root=tmp_path / "c2", version_tag="v2")
        points = [SweepPoint(SQUARE, {"value": v}) for v in (2, 3)]
        run_sweep(points, cache=cache_v1, journal=str(journal_path))
        before = len(point_lines(journal_path))
        run_sweep(
            points, cache=cache_v2, journal=str(journal_path), resume=True
        )
        # Different version tag -> different keys -> everything re-ran.
        assert len(point_lines(journal_path)) == before + len(points)


class TestAcceptance:
    """ISSUE acceptance: crash mid-sweep -> skip completes -> resume
    re-executes only the failed point, bit-identical to a clean run."""

    def test_crashed_point_resumes_bit_identical(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        values = list(range(6))
        # Pre-mark every value except 3: only point 3 hard-crashes its
        # worker (first visit), everything else succeeds immediately.
        for value in values:
            if value != 3:
                (markers / f"seen-{value}").write_text("seen\n")
        points = [
            SweepPoint(FAIL_ONCE, {"value": v, "marker_dir": str(markers)})
            for v in values
        ]
        cache = SweepCache(root=tmp_path / "cache")
        journal_path = tmp_path / "sweep.jsonl"
        policy = RunnerConfig(max_retries=0, **FAST)

        partial = run_sweep(
            points,
            jobs=2,
            cache=cache,
            policy=policy,
            journal=str(journal_path),
            on_error="skip",
        )
        assert partial == [0, 1, 4, None, 16, 25]
        # Every completed point is cached despite the crash.
        for value in values:
            hit, _ = cache.lookup(
                FAIL_ONCE, {"value": value, "marker_dir": str(markers)}
            )
            assert hit == (value != 3)
        before = len(point_lines(journal_path))

        resumed = run_sweep(
            points,
            jobs=2,
            cache=cache,
            policy=policy,
            journal=str(journal_path),
            resume=True,
        )
        # Only the crashed point re-ran...
        assert len(point_lines(journal_path)) == before + 1
        # ...and the merged output matches an uninterrupted serial run
        # (markers all exist now, so a fresh sweep succeeds first try).
        clean = run_sweep(points, jobs=1)
        assert resumed == clean == [v * v for v in values]


_SIGINT_SCRIPT = """
import sys
from repro.errors import SweepInterrupted
from repro.parallel import SweepCache, SweepPoint, run_sweep

cache_dir, journal_path = sys.argv[1:3]
points = [
    SweepPoint(
        "tests.parallel.point_functions:sleepy_square_point",
        {"value": value, "delay_s": 0.5},
    )
    for value in range(8)
]
print("ready", flush=True)
try:
    run_sweep(
        points,
        jobs=2,
        cache=SweepCache(root=cache_dir),
        journal=journal_path,
    )
except SweepInterrupted as error:
    print(f"interrupted: {error}", file=sys.stderr, flush=True)
    sys.exit(130)
sys.exit(0)
"""


class TestGracefulInterrupt:
    def test_sigint_flushes_journal_and_resume_completes(self, tmp_path):
        repo_root = Path(__file__).resolve().parents[2]
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "sweep.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), str(repo_root)]
        )
        process = subprocess.Popen(
            [sys.executable, "-c", _SIGINT_SCRIPT, str(cache_dir), str(journal_path)],
            env=env,
            cwd=str(repo_root),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Interrupt once at least two points have been journaled
            # (so there is real completed work to preserve).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    journal_path.exists()
                    and len(point_lines(journal_path)) >= 2
                ):
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - diagnosis aid
                pytest.fail("journal never accumulated two points")
            process.send_signal(signal.SIGINT)
            _out, err = process.communicate(timeout=30.0)
        finally:
            if process.poll() is None:  # pragma: no cover - hung child
                process.kill()
                process.communicate()
        assert process.returncode == 130, err
        assert "interrupted" in err
        assert "resume" in err

        # Graceful shutdown left a valid journal: every line parses,
        # and the interrupted trailer made it to disk.
        documents = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert any(doc.get("type") == "interrupted" for doc in documents)
        completed = point_lines(journal_path)
        assert 2 <= len(completed) < 8
        assert all(record["status"] == "ok" for record in completed)

        # Resume finishes the tail; merged output is bit-identical to
        # an uninterrupted run.
        points = [
            SweepPoint(
                "tests.parallel.point_functions:sleepy_square_point",
                {"value": value, "delay_s": 0.5},
            )
            for value in range(8)
        ]
        resumed = run_sweep(
            points,
            jobs=2,
            cache=SweepCache(root=cache_dir),
            journal=str(journal_path),
            resume=True,
        )
        assert resumed == [value * value for value in range(8)]
