"""The sweep journal: JSONL round-trips, crash tolerance, key parity."""

import json

from repro.parallel import SweepCache, load_journal, point_key
from repro.parallel.journal import PointRecord, SweepJournal

SQUARE = "tests.parallel.point_functions:square_point"


def make_record(**overrides):
    fields = dict(
        key="k1",
        fn=SQUARE,
        index=0,
        status="ok",
        attempts=1,
        duration_s=0.5,
        version="v1",
        value=9,
    )
    fields.update(overrides)
    return PointRecord(**fields)


class TestPointRecord:
    def test_round_trip(self):
        record = make_record()
        again = PointRecord.from_dict(record.to_dict())
        assert again == record

    def test_value_omitted_on_failure(self):
        record = make_record(
            status="crashed", value=None, error="boom", error_type="OSError"
        )
        document = record.to_dict()
        assert "value" not in document
        assert document["error"] == "boom"
        assert document["error_type"] == "OSError"

    def test_cached_flag_survives(self):
        record = make_record(cached=True, attempts=0)
        assert PointRecord.from_dict(record.to_dict()).cached is True


class TestJournalFile:
    def test_written_records_load_back(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.start_sweep(total=2, to_run=2, version_tag="v1")
            journal.record(make_record(key="a", index=0, value=1))
            journal.record(
                make_record(
                    key="b",
                    index=1,
                    status="failed",
                    value=None,
                    error="bad",
                    error_type="SimulationError",
                )
            )
            journal.finish(ok=1, failed=1)
        records = load_journal(path)
        assert set(records) == {"a", "b"}
        assert records["a"].value == 1
        assert records["b"].status == "failed"
        # Every line on disk is valid JSON (flushed line-by-line).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") == {}

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(make_record(key="a"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "point", "key": "b", "sta')  # hard kill
        records = load_journal(path)
        assert set(records) == {"a"}

    def test_garbage_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            "not json at all\n"
            '{"type": "sweep-start", "total": 1}\n'
            '{"type": "point", "key": "a", "status": "warped"}\n'
            + json.dumps(make_record(key="ok").to_dict())
            + "\n"
        )
        assert set(load_journal(path)) == {"ok"}

    def test_latest_record_per_key_wins(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(
                make_record(
                    key="a",
                    status="crashed",
                    value=None,
                    error="died",
                    error_type="OSError",
                )
            )
            journal.record(make_record(key="a", status="ok", attempts=2))
        record = load_journal(path)["a"]
        assert record.status == "ok"
        assert record.attempts == 2


class TestKeyParity:
    def test_journal_keys_are_cache_keys(self, tmp_path):
        # The supervisor journals under point_key so resume and cache
        # triage agree on identity, whatever order they are consulted.
        cache = SweepCache(root=tmp_path / "cache")
        params = {"value": 3}
        assert cache.key(SQUARE, params) == point_key(
            SQUARE, params, cache.version_tag
        )

    def test_key_depends_on_version_tag(self):
        params = {"value": 3}
        assert point_key(SQUARE, params, "v1") != point_key(
            SQUARE, params, "v2"
        )
