"""Cache semantics: hit/miss/invalidation by params, seed and version."""

import json

import pytest

from repro.parallel import SweepCache, SweepPoint, code_version_tag, run_sweep
from repro.parallel.cache import default_cache_dir

#: Cheap analytic point function used throughout (no simulation).
POINT_FN = "repro.experiments.table2:throughput_point"
PARAMS = {"rate_mbps": 11.0, "payload_bytes": 512, "rts_cts": False}


def make_cache(tmp_path, tag="test-tag"):
    return SweepCache(root=tmp_path / "cache", version_tag=tag)


class TestLookup:
    def test_cold_lookup_is_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        hit, value = cache.lookup(POINT_FN, PARAMS)
        assert not hit
        assert value is None
        assert cache.misses == 1

    def test_put_then_lookup_is_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, [1.0, 2.0])
        hit, value = cache.lookup(POINT_FN, PARAMS)
        assert hit
        assert value == [1.0, 2.0]
        assert cache.hits == 1

    def test_param_change_misses(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, [1.0, 2.0])
        changed = dict(PARAMS, payload_bytes=1024)
        hit, _ = cache.lookup(POINT_FN, changed)
        assert not hit

    def test_seed_change_misses(self, tmp_path):
        cache = make_cache(tmp_path)
        params = dict(PARAMS, seed=1)
        cache.put(POINT_FN, params, 0.25)
        hit, _ = cache.lookup(POINT_FN, dict(params, seed=2))
        assert not hit
        hit, value = cache.lookup(POINT_FN, params)
        assert hit and value == 0.25

    def test_version_tag_change_invalidates(self, tmp_path):
        old = make_cache(tmp_path, tag="v1")
        old.put(POINT_FN, PARAMS, 42.0)
        new = SweepCache(root=old.root, version_tag="v2")
        hit, _ = new.lookup(POINT_FN, PARAMS)
        assert not hit
        # The old entry is still there for the old tag (content address).
        hit, value = make_cache(tmp_path, tag="v1").lookup(POINT_FN, PARAMS)
        assert hit and value == 42.0

    def test_function_change_misses(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, 1.0)
        hit, _ = cache.lookup("repro.experiments.ranges:loss_point", PARAMS)
        assert not hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, 1.0)
        path = cache._path(cache.key(POINT_FN, PARAMS))
        path.write_text("not json{")
        hit, _ = cache.lookup(POINT_FN, PARAMS)
        assert not hit

    def test_key_is_order_insensitive(self, tmp_path):
        cache = make_cache(tmp_path)
        forward = cache.key(POINT_FN, {"a": 1, "b": 2})
        backward = cache.key(POINT_FN, {"b": 2, "a": 1})
        assert forward == backward


class TestClear:
    def test_clear_removes_entries(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, 1.0)
        cache.put(POINT_FN, dict(PARAMS, rts_cts=True), 2.0)
        assert cache.clear() == 2
        hit, _ = cache.lookup(POINT_FN, PARAMS)
        assert not hit

    def test_clear_on_missing_root_is_zero(self, tmp_path):
        assert make_cache(tmp_path).clear() == 0


class TestEntryFormat:
    def test_entry_is_debuggable_json(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, [3.0])
        path = cache._path(cache.key(POINT_FN, PARAMS))
        document = json.loads(path.read_text())
        assert document["fn"] == POINT_FN
        assert document["params"] == PARAMS
        assert document["version"] == "test-tag"
        assert document["value"] == [3.0]


class TestVersionTag:
    def test_tag_is_stable_within_process(self):
        assert code_version_tag() == code_version_tag()

    def test_default_cache_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestSweepIntegration:
    def test_run_sweep_fills_and_reuses_cache(self, tmp_path):
        points = [
            SweepPoint(POINT_FN, dict(PARAMS, payload_bytes=payload))
            for payload in (512, 1024)
        ]
        cold = make_cache(tmp_path)
        first = run_sweep(points, cache=cold)
        assert cold.hits == 0 and cold.misses == 2
        warm = make_cache(tmp_path)
        second = run_sweep(points, cache=warm)
        assert warm.hits == 2 and warm.misses == 0
        assert first == second

    def test_stale_version_recomputes(self, tmp_path):
        points = [SweepPoint(POINT_FN, PARAMS)]
        run_sweep(points, cache=make_cache(tmp_path, tag="v1"))
        fresh = make_cache(tmp_path, tag="v2")
        result = run_sweep(points, cache=fresh)
        assert fresh.misses == 1
        assert result == run_sweep(points)  # uncached reference


class TestMissSentinel:
    def test_get_returns_sentinel_on_miss(self, tmp_path):
        from repro.parallel.cache import _MISS

        cache = make_cache(tmp_path)
        assert cache.get(POINT_FN, PARAMS) is _MISS
        cache.put(POINT_FN, PARAMS, None)
        assert cache.get(POINT_FN, PARAMS) is None

    def test_cached_none_value_is_a_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(POINT_FN, PARAMS, None)
        hit, value = cache.lookup(POINT_FN, PARAMS)
        assert hit and value is None


@pytest.mark.parametrize("payload", [512, 1024])
def test_round_trip_matches_direct_call(tmp_path, payload):
    from repro.experiments.table2 import throughput_point

    cache = SweepCache(root=tmp_path, version_tag="rt")
    params = dict(PARAMS, payload_bytes=payload)
    (via_engine,) = run_sweep([SweepPoint(POINT_FN, params)], cache=cache)
    assert via_engine == throughput_point(**params)
    (from_cache,) = run_sweep([SweepPoint(POINT_FN, params)], cache=cache)
    assert from_cache == via_engine
