"""Acceptance: parallel and cached sweeps are bit-identical to serial.

The engine's whole contract is that ``--jobs N`` and a warm cache are
pure wall-clock optimisations: the two-node UDP delivery trace, the
loss curves and the rendered tables must not change by a single byte.
"""

import pytest

from repro.core.params import Rate
from repro.experiments.ranges import format_loss_curves, run_figure3
from repro.parallel import SweepCache, SweepPoint, run_sweep

TRACE = "repro.experiments.two_nodes:udp_trace_point"

#: Small but non-trivial: ~3 distances × 2 seeds of a real scenario.
TRACE_POINTS = [
    SweepPoint(
        TRACE,
        {
            "rate_mbps": 2.0,
            "distance_m": distance,
            "duration_s": 0.15,
            "payload_bytes": 256,
            "seed": seed,
        },
    )
    for distance in (10.0, 60.0, 110.0)
    for seed in (1, 2)
]


class TestTraceIdentity:
    def test_two_node_udp_trace_jobs1_vs_jobs4(self):
        serial = run_sweep(TRACE_POINTS, jobs=1)
        parallel = run_sweep(TRACE_POINTS, jobs=4)
        # Trace-level comparison: every receive timestamp, in order.
        assert serial == parallel
        assert any(trace for trace in serial)  # the scenario delivered

    def test_trace_survives_a_cache_round_trip(self, tmp_path):
        cache = SweepCache(root=tmp_path, version_tag="identity")
        cold = run_sweep(TRACE_POINTS, cache=cache)
        warm = run_sweep(TRACE_POINTS, cache=cache)
        assert cache.hits == len(TRACE_POINTS)
        assert cold == warm == run_sweep(TRACE_POINTS)


class TestRenderedIdentity:
    @pytest.fixture(scope="class")
    def serial_curves(self):
        return run_figure3(probes=30)

    def test_figure3_jobs4_renders_identically(self, serial_curves):
        parallel = run_figure3(probes=30, jobs=4)
        assert format_loss_curves(parallel, "t") == format_loss_curves(
            serial_curves, "t"
        )

    def test_figure3_warm_cache_renders_identically(
        self, serial_curves, tmp_path
    ):
        cache = SweepCache(root=tmp_path, version_tag="identity")
        cold = run_figure3(probes=30, cache=cache, jobs=2)
        warm = run_figure3(probes=30, cache=cache)
        assert cache.hits > 0
        rendered = format_loss_curves(serial_curves, "t")
        assert format_loss_curves(cold, "t") == rendered
        assert format_loss_curves(warm, "t") == rendered

    def test_curve_metadata_preserved(self, serial_curves):
        assert [curve.rate for curve in serial_curves] == [
            Rate.MBPS_11,
            Rate.MBPS_5_5,
            Rate.MBPS_2,
            Rate.MBPS_1,
        ]
