"""The sweep engine: ordering, pooling, policy, error transport."""

import pytest

from repro.errors import ExperimentError, SimulationError, WatchdogTimeout
from repro.experiments.runner import RunnerConfig
from repro.parallel import (
    SweepPoint,
    backoff_delay_s,
    execute_point,
    pmap,
    run_sweep,
)
from repro.parallel.engine import resolve_point_fn

SQUARE = "tests.parallel.point_functions:square_point"
FLAKY = "tests.parallel.point_functions:flaky_point"
FAILS = "tests.parallel.point_functions:always_fails_point"
SLOW = "tests.parallel.point_functions:slow_point"
TABLE2 = "repro.experiments.table2:throughput_point"


class TestResolve:
    def test_resolves_dotted_path(self):
        fn = resolve_point_fn(SQUARE)
        assert fn(3) == 9

    def test_malformed_path_rejected(self):
        with pytest.raises(ExperimentError, match="pkg.mod:fn"):
            resolve_point_fn("no-colon-here")

    def test_missing_module_rejected(self):
        with pytest.raises(ExperimentError, match="cannot resolve"):
            resolve_point_fn("repro.does_not_exist:fn")

    def test_missing_attribute_rejected(self):
        with pytest.raises(ExperimentError, match="cannot resolve"):
            resolve_point_fn("repro.parallel.engine:no_such_fn")


class TestSerial:
    def test_results_in_point_order(self):
        points = [SweepPoint(SQUARE, {"value": v}) for v in (3, 1, 2)]
        assert run_sweep(points) == [9, 1, 4]

    def test_tuple_points_accepted(self):
        assert run_sweep([(SQUARE, {"value": 5})]) == [25]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_sweep([], jobs=0)

    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_serial_errors_keep_their_type(self):
        with pytest.raises(ValueError, match="deterministic bug"):
            run_sweep([SweepPoint(FAILS, {"seed": 1})])


class TestPolicy:
    def test_retry_perturbs_seed_on_simulation_error(self):
        policy = RunnerConfig(max_retries=1, retry_seed_step=1000)
        (value,) = run_sweep([SweepPoint(FLAKY, {"seed": 1})], policy=policy)
        assert value == 1001  # retried once with seed + step

    def test_exhausted_retries_raise_last_error(self):
        policy = RunnerConfig(max_retries=1, retry_seed_step=1)
        with pytest.raises(SimulationError, match="livelocked"):
            run_sweep([SweepPoint(FLAKY, {"seed": 1})], policy=policy)

    def test_non_simulation_errors_do_not_retry(self):
        policy = RunnerConfig(max_retries=5, retry_seed_step=1000)
        with pytest.raises(ValueError):
            run_sweep([SweepPoint(FAILS, {"seed": 1})], policy=policy)

    def test_timeout_raises_watchdog(self):
        policy = RunnerConfig(timeout_s=0.05, max_retries=0)
        with pytest.raises(WatchdogTimeout, match="wall-clock budget"):
            execute_point(SLOW, {"seed": 1}, (0.05, 0, 0))
        with pytest.raises(WatchdogTimeout):
            run_sweep([SweepPoint(SLOW, {"seed": 1})], policy=policy)

    def test_no_policy_runs_once(self):
        with pytest.raises(SimulationError):
            run_sweep([SweepPoint(FLAKY, {"seed": 1})])


class TestParallel:
    def test_pool_results_match_serial(self):
        points = [
            SweepPoint(
                TABLE2,
                {"rate_mbps": 11.0, "payload_bytes": payload, "rts_cts": rts},
            )
            for payload in (512, 1024)
            for rts in (False, True)
        ]
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        assert serial == parallel

    def test_spawn_start_method_is_supported(self):
        points = [
            SweepPoint(
                TABLE2,
                {"rate_mbps": 2.0, "payload_bytes": payload, "rts_cts": False},
            )
            for payload in (512, 1024)
        ]
        assert run_sweep(points, jobs=2, start_method="spawn") == run_sweep(points)

    def test_worker_failure_reraises_original_repro_type(self):
        points = [
            SweepPoint(FLAKY, {"seed": 1}),
            SweepPoint(FLAKY, {"seed": 200}),
        ]
        with pytest.raises(SimulationError, match="livelocked"):
            run_sweep(points, jobs=2)

    def test_worker_failure_with_foreign_type_degrades(self):
        with pytest.raises(ExperimentError, match="deterministic bug"):
            run_sweep(
                [SweepPoint(FAILS, {"seed": 1}), SweepPoint(FAILS, {"seed": 2})],
                jobs=2,
            )

    def test_single_miss_avoids_the_pool(self):
        # One point never pays pool start-up, whatever ``jobs`` says.
        (value,) = run_sweep([SweepPoint(SQUARE, {"value": 7})], jobs=8)
        assert value == 49


class TestPmap:
    def test_serial_map(self):
        assert pmap(len, ["a", "bb", "ccc"]) == [1, 2, 3]

    def test_parallel_map_preserves_order(self):
        from tests.parallel.point_functions import square_point

        items = list(range(8))
        assert pmap(square_point, items, jobs=2) == [v * v for v in items]

    def test_jobs_validated(self):
        with pytest.raises(ExperimentError):
            pmap(len, [], jobs=-1)

    def test_worker_error_keeps_repro_type(self):
        from tests.parallel.point_functions import flaky_point

        with pytest.raises(SimulationError, match="livelocked"):
            pmap(flaky_point, [1, 200], jobs=2)

    def test_foreign_worker_error_carries_worker_traceback(self):
        from tests.parallel.point_functions import always_fails_point

        with pytest.raises(ExperimentError, match="deterministic bug") as info:
            pmap(always_fails_point, [1, 2], jobs=2)
        assert "worker traceback" in str(info.value)
        assert "always_fails_point" in str(info.value)

    def test_serial_errors_stay_unwrapped(self):
        from tests.parallel.point_functions import always_fails_point

        with pytest.raises(ValueError, match="deterministic bug"):
            pmap(always_fails_point, [1])


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        first = backoff_delay_s(3, 0.1, 2.0, token="figure3")
        second = backoff_delay_s(3, 0.1, 2.0, token="figure3")
        assert first == second

    def test_jitter_within_half_to_full_raw_delay(self):
        for attempt in range(1, 8):
            raw = min(0.1 * 2.0 ** (attempt - 1), 2.0)
            delay = backoff_delay_s(attempt, 0.1, 2.0, token="t")
            assert 0.5 * raw <= delay <= raw

    def test_capped_at_max(self):
        assert backoff_delay_s(30, 0.1, 2.0, token="t") <= 2.0

    def test_different_tokens_desynchronise(self):
        delays = {backoff_delay_s(1, 0.1, 2.0, token=t) for t in "abcd"}
        assert len(delays) == 4

    def test_disabled_when_base_nonpositive(self):
        assert backoff_delay_s(3, 0.0, 2.0) == 0.0
        assert backoff_delay_s(0, 0.1, 2.0) == 0.0
