"""Checker mechanics: waivers, parse failures, file discovery."""

import textwrap
from pathlib import Path

from repro.simlint.checker import (
    Checker,
    ParsedModule,
    iter_python_files,
)

FIXTURES = Path(__file__).parent / "fixtures"


def lint_source(tmp_path: Path, source: str):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Checker().check_paths([path], root=tmp_path)


class TestWaivers:
    def test_inline_waiver_suppresses_and_keeps_reason(self, tmp_path):
        (finding,) = lint_source(
            tmp_path,
            """\
            import random

            draw = random.random()  # simlint: waive[SL101] -- fixture noise
            """,
        )
        assert finding.rule_id == "SL101"
        assert finding.waived
        assert finding.waiver_reason == "fixture noise"

    def test_standalone_waiver_covers_next_line(self, tmp_path):
        (finding,) = lint_source(
            tmp_path,
            """\
            import random

            # simlint: waive[SL101] -- seeding helper, reproducible anyway
            draw = random.random()
            """,
        )
        assert finding.waived
        assert finding.waiver_reason is not None

    def test_standalone_waiver_reason_folds_following_comments(self, tmp_path):
        (finding,) = lint_source(
            tmp_path,
            """\
            import random

            # simlint: waive[SL101] -- first half of the
            # justification continues here.
            draw = random.random()
            """,
        )
        assert finding.waived
        assert "continues here" in finding.waiver_reason

    def test_waiver_does_not_cover_other_rules(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            import random

            draw = random.random()  # simlint: waive[SL999] -- wrong rule
            """,
        )
        by_rule = {f.rule_id: f for f in findings}
        # The SL999 waiver suppresses nothing, so it is itself stale (SL003).
        assert set(by_rule) == {"SL101", "SL003"}
        assert not by_rule["SL101"].waived

    def test_star_waiver_covers_everything(self, tmp_path):
        (finding,) = lint_source(
            tmp_path,
            """\
            import random

            draw = random.random()  # simlint: waive[*] -- generated file
            """,
        )
        assert finding.waived

    def test_waiver_without_reason_is_sl001_and_suppresses_nothing(self):
        findings = Checker().check_paths(
            [FIXTURES / "sl001_trigger.py"], root=FIXTURES
        )
        by_rule = {f.rule_id: f for f in findings}
        assert set(by_rule) == {"SL001", "SL102"}
        assert not by_rule["SL102"].waived

    def test_waiver_separated_by_code_does_not_apply(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            import random

            # simlint: waive[SL101] -- too far away
            x = 1
            draw = random.random()
            """,
        )
        (finding,) = [f for f in findings if f.rule_id == "SL101"]
        assert not finding.waived


class TestParseFailures:
    def test_syntax_error_becomes_sl002(self):
        findings = Checker().check_paths(
            [FIXTURES / "sl002_trigger.py"], root=FIXTURES
        )
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "cannot parse" in findings[0].message

    def test_checker_keeps_going_past_broken_files(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        (tmp_path / "fine.py").write_text(
            "import random\ndraw = random.random()\n", encoding="utf-8"
        )
        findings = Checker().check_paths([tmp_path], root=tmp_path)
        assert {f.rule_id for f in findings} == {"SL002", "SL101"}


class TestDiscovery:
    def test_iter_python_files_is_sorted_and_recursive(self, tmp_path):
        (tmp_path / "b.py").write_text("", encoding="utf-8")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text("", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("", encoding="utf-8")
        names = [p.relative_to(tmp_path) for p in iter_python_files([tmp_path])]
        assert [str(n) for n in names] == ["b.py", "sub/a.py"]

    def test_parsed_module_relpath_is_posix_relative(self, tmp_path):
        path = tmp_path / "pkg" / "mod.py"
        path.parent.mkdir()
        path.write_text("x = 1\n", encoding="utf-8")
        module = ParsedModule.parse(path, root=tmp_path)
        assert module.relpath == "pkg/mod.py"
