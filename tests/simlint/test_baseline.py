"""Baseline fingerprinting: line-number independence, adopt/split."""

from pathlib import Path

from repro.simlint.baseline import (
    Baseline,
    LineTextLookup,
    fingerprint,
    fingerprint_findings,
)
from repro.simlint.checker import Checker, Finding


def write_and_lint(tmp_path: Path, name: str, source: str):
    (tmp_path / name).write_text(source, encoding="utf-8")
    return Checker().check_paths([tmp_path / name], root=tmp_path)


class TestFingerprint:
    def test_ignores_line_numbers_but_not_line_text(self):
        base = Finding("SL101", "mod.py", 10, 4, "msg")
        moved = Finding("SL101", "mod.py", 99, 4, "msg")
        text = "draw = random.random()"
        assert fingerprint(base, text, 0) == fingerprint(moved, text, 0)
        # Surrounding whitespace is normalised away; real edits are not.
        assert fingerprint(base, text, 0) == fingerprint(base, f"  {text}", 0)
        assert fingerprint(base, text, 0) != fingerprint(
            base, "draw = rng.stream('mac').random()", 0
        )

    def test_duplicate_lines_get_distinct_occurrences(self, tmp_path):
        findings = write_and_lint(
            tmp_path,
            "dup.py",
            "import random\ndraw = random.random()\ndraw = random.random()\n",
        )
        pairs = fingerprint_findings(findings, LineTextLookup(root=tmp_path))
        prints = [p for _, p in pairs]
        assert len(prints) == 2
        assert len(set(prints)) == 2


class TestBaselineRoundTrip:
    def test_write_load_split(self, tmp_path):
        findings = write_and_lint(
            tmp_path, "old.py", "import random\ndraw = random.random()\n"
        )
        lookup = LineTextLookup(root=tmp_path)
        baseline = Baseline.from_findings(findings, lookup)
        baseline_path = tmp_path / "baseline.json"
        baseline.write(baseline_path)

        reloaded = Baseline.load(baseline_path)
        assert len(reloaded) == len(baseline) == 1

        # The adopted finding is baselined; a new violation is not.
        findings = write_and_lint(
            tmp_path,
            "old.py",
            "import random\n# padding shifts line numbers\n"
            "draw = random.random()\nimport time\nnow = time.time()\n",
        )
        new, baselined = reloaded.split(findings, LineTextLookup(root=tmp_path))
        assert [f.rule_id for f in baselined] == ["SL101"]
        assert [f.rule_id for f in new] == ["SL103"]

    def test_waived_findings_never_enter_a_baseline(self, tmp_path):
        findings = write_and_lint(
            tmp_path,
            "waived.py",
            "import random\n"
            "draw = random.random()  # simlint: waive[SL101] -- test corpus\n",
        )
        assert all(f.waived for f in findings)
        baseline = Baseline.from_findings(findings, LineTextLookup(root=tmp_path))
        assert len(baseline) == 0
