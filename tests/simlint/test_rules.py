"""Every simlint rule against its trigger/clean fixture pair.

Each rule id ``SLnnn`` has two files under ``fixtures/``:
``slnnn_trigger.py`` contains the smallest snippet that must fire the
rule, ``slnnn_clean.py`` the idiomatic rewrite that must stay silent —
for *all* rules, not just the one under test, so the clean corpus
doubles as a false-positive regression suite.
"""

from pathlib import Path

import pytest

from repro.simlint.checker import Checker

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = [
    "SL003",
    "SL101",
    "SL102",
    "SL103",
    "SL104",
    "SL201",
    "SL202",
    "SL301",
    "SL302",
    "SL401",
    "SL402",
    "SL601",
    "SL701",
    "SL702",
    "SL703",
    "SL704",
    "SL705",
    "SL801",
    "SL802",
    "SL803",
    "SL804",
]


def lint_fixture(name: str):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return Checker().check_paths([path], root=FIXTURES)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_fires_exactly_its_rule(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_trigger.py")
    active = [f for f in findings if not f.waived]
    assert {f.rule_id for f in active} == {rule_id}


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_silent(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_clean.py")
    assert findings == []


def test_findings_carry_location_and_message():
    (finding,) = lint_fixture("sl101_trigger.py")
    assert finding.line > 0
    assert finding.location().startswith("sl101_trigger.py:")
    assert "RngManager" in finding.message


def test_rule_registry_is_sorted_and_unique():
    from repro.simlint.rules import all_rules, rules_by_id

    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    assert set(rules_by_id()) == set(ids)
