"""SARIF output: schema validity, rule indexing, suppressions, CLI path."""

import json
import textwrap
from pathlib import Path

import jsonschema
import pytest

from repro.simlint.checker import Finding
from repro.simlint.cli import run as cli_run
from repro.simlint.sarif import SARIF_VERSION, render_sarif

SCHEMA_PATH = Path(__file__).parent / "sarif-2.1.0-subset.schema.json"


@pytest.fixture(scope="module")
def schema():
    payload = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    jsonschema.Draft7Validator.check_schema(payload)
    return payload


def make_finding(rule_id="SL101", waived=False, reason=None):
    return Finding(
        rule_id=rule_id,
        path="repro/sim/engine.py",
        line=12,
        col=4,
        message="example finding",
        waived=waived,
        waiver_reason=reason,
    )


RULE_SUMMARIES = {"SL101": "module-global randomness", "SL701": "unit mix"}


class TestDocumentShape:
    def test_validates_against_schema(self, schema):
        document = json.loads(
            render_sarif(
                [make_finding()],
                [make_finding(waived=True, reason="fixture noise")],
                [make_finding(rule_id="SL701")],
                RULE_SUMMARIES,
            )
        )
        jsonschema.validate(document, schema)
        assert document["version"] == SARIF_VERSION

    def test_every_rule_is_declared_and_indexed(self):
        document = json.loads(
            render_sarif([make_finding()], [], [], RULE_SUMMARIES)
        )
        (run,) = document["runs"]
        rules = run["tool"]["driver"]["rules"]
        declared = [rule["id"] for rule in rules]
        # Registry families plus the checker's own SL001-SL003.
        for rule_id in ("SL001", "SL002", "SL003", "SL101", "SL701"):
            assert rule_id in declared
        (result,) = run["results"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_location_is_root_relative_with_srcroot_base(self):
        document = json.loads(
            render_sarif([make_finding()], [], [], RULE_SUMMARIES)
        )
        (result,) = document["runs"][0]["results"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "repro/sim/engine.py"
        assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert physical["region"] == {"startLine": 12, "startColumn": 5}


class TestSuppressions:
    def test_active_findings_carry_no_suppressions(self):
        document = json.loads(
            render_sarif([make_finding()], [], [], RULE_SUMMARIES)
        )
        (result,) = document["runs"][0]["results"]
        assert "suppressions" not in result

    def test_waived_findings_are_suppressed_in_source(self):
        document = json.loads(
            render_sarif(
                [],
                [make_finding(waived=True, reason="fixture noise")],
                [],
                RULE_SUMMARIES,
            )
        )
        (result,) = document["runs"][0]["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert suppression["justification"] == "fixture noise"

    def test_baselined_findings_are_suppressed_externally(self):
        document = json.loads(
            render_sarif([], [], [make_finding()], RULE_SUMMARIES)
        )
        (result,) = document["runs"][0]["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"


class TestCliSarif:
    def test_cli_emits_valid_sarif(self, tmp_path, capsys, schema, monkeypatch):
        monkeypatch.chdir(tmp_path)
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            textwrap.dedent(
                """\
                import random

                draw = random.random()
                """
            ),
            encoding="utf-8",
        )
        exit_code = cli_run(["--no-cache", "--format", "sarif", str(snippet)])
        document = json.loads(capsys.readouterr().out)
        jsonschema.validate(document, schema)
        assert exit_code == 1
        results = document["runs"][0]["results"]
        assert any(result["ruleId"] == "SL101" for result in results)
