"""The ``repro lint`` front-end — including the self-lint gate.

``test_repro_package_lints_clean`` is the PR's acceptance criterion:
the shipped sources must produce zero active findings (every violation
fixed, or waived with an inline justification).
"""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.simlint.cli import run as lint_run
from repro.simlint.report import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestSelfLint:
    def test_repro_package_lints_clean(self, capsys):
        assert lint_run([str(SRC_REPRO)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_lint_subcommand_is_wired_into_repro_cli(self, capsys):
        assert repro_main(["lint", str(SRC_REPRO)]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_waivers_in_shipped_sources_all_carry_reasons(self, capsys):
        lint_run([str(SRC_REPRO), "--show-waivers"])
        out = capsys.readouterr().out
        # Every waived line is rendered with its justification.
        for line in out.splitlines():
            if "waived" in line and ":" in line:
                assert "--" not in line or line.split("--", 1)[1].strip()


class TestCliBehaviour:
    def test_findings_exit_nonzero(self, capsys):
        code = lint_run([str(FIXTURES / "sl101_trigger.py")])
        assert code == EXIT_FINDINGS
        assert "SL101" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, capsys):
        assert lint_run(["definitely/not/a/path.py"]) == EXIT_ERROR
        assert "no such file" in capsys.readouterr().err

    def test_json_report_shape(self, capsys):
        code = lint_run(["--format", "json", str(FIXTURES / "sl101_trigger.py")])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["active"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "SL101"
        assert finding["path"].endswith("sl101_trigger.py")

    def test_json_report_embeds_spec_constants_for_core_params(
        self, capsys
    ):
        code = lint_run(["--format", "json", str(FIXTURES / "spec_clean")])
        assert code == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec_constants"]["mac.sifs_us"] == 10.0

    def test_list_rules_names_every_family(self, capsys):
        assert lint_run(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("SL101", "SL201", "SL301", "SL401", "SL501"):
            assert rule_id in out

    def test_baseline_workflow_end_to_end(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(
            "import random\ndraw = random.random()\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        assert (
            lint_run([str(target), "--write-baseline", str(baseline)])
            == EXIT_CLEAN
        )
        capsys.readouterr()
        # With the baseline the legacy finding is suppressed...
        assert lint_run([str(target), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out
        # ...but a new violation still fails the run.
        target.write_text(
            "import random, time\n"
            "draw = random.random()\n"
            "now = time.time()\n",
            encoding="utf-8",
        )
        assert (
            lint_run([str(target), "--baseline", str(baseline)])
            == EXIT_FINDINGS
        )
        assert "SL103" in capsys.readouterr().out

    def test_unreadable_baseline_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json", encoding="utf-8")
        code = lint_run([str(FIXTURES / "sl101_clean.py"), "--baseline", str(bad)])
        assert code == EXIT_ERROR
        assert "cannot read baseline" in capsys.readouterr().err
