"""Spec-violating fixture: wrong SIFS (SL501 + SL503), ack_bits gone
(SL502), and a short PLCP header rate that breaks the 96 us total."""
import enum
from dataclasses import dataclass


class Rate(enum.Enum):
    MBPS_1 = 1.0
    MBPS_2 = 2.0
    MBPS_5_5 = 5.5
    MBPS_11 = 11.0


BASIC_RATE_SET = (Rate.MBPS_1, Rate.MBPS_2)


@dataclass(frozen=True)
class PlcpParameters:
    preamble_bits: int
    preamble_rate: Rate
    header_bits: int
    header_rate: Rate

    @classmethod
    def long(cls) -> "PlcpParameters":
        return cls(
            preamble_bits=144,
            preamble_rate=Rate.MBPS_1,
            header_bits=48,
            header_rate=Rate.MBPS_1,
        )

    @classmethod
    def short(cls) -> "PlcpParameters":
        return cls(
            preamble_bits=72,
            preamble_rate=Rate.MBPS_1,
            header_bits=48,
            header_rate=Rate.MBPS_1,
        )


@dataclass(frozen=True)
class MacParameters:
    slot_time_us: float = 20.0
    sifs_us: float = 11.0
    difs_us: float = 50.0
    cw_min_slots: int = 32
    cw_max_slots: int = 1024
    mac_header_bits: int = 272
    rts_bits: int = 160
    cts_bits: int = 112
    propagation_delay_us: float = 1.0
    short_retry_limit: int = 7
    long_retry_limit: int = 4
