"""Triggers SL301: the DIFS constant duplicated in a time context."""


def deferral_us() -> float:
    difs_us = 50.0
    return difs_us
