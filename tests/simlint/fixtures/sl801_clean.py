"""Clean for SL801: order pinned by sorted(), summed exactly."""
import math


def total_power(readings_mw: frozenset) -> float:
    levels = sorted(readings_mw)
    return math.fsum(levels)
