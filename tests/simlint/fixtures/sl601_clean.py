"""Clean for SL601: the network is declared as a spec and built."""

from repro.scenario import (
    FlowSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build,
)


def spec_built_network():
    spec = ScenarioSpec(
        topology=TopologySpec.line(0, 10),
        traffic=TrafficSpec(flows=(FlowSpec(kind="cbr", src=0, dst=1),)),
        seed=1,
        duration_s=1.0,
    )
    return build(spec)
