"""Clean for SL101: the draw comes from a named RngManager stream."""
from repro.sim.rng import RngManager


def jitter_ns(rng_manager: RngManager) -> int:
    return rng_manager.stream("app.jitter").randint(0, 1000)
