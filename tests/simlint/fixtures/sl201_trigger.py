"""Triggers SL201: id()-derived dict key."""


def remember(cache: dict, device: object, value: float) -> None:
    cache[id(device)] = value
