"""Triggers SL704: a microsecond value crossing a nanosecond parameter."""


def schedule(delay_ns: int) -> int:
    return delay_ns


def arm(timeout_us: float) -> int:
    return schedule(timeout_us)
