"""Triggers SL202: event scheduling driven by set iteration order."""


def schedule_all(sim, devices: list) -> None:
    for device in set(devices):
        sim.schedule(0, device.poll)


def schedule_overlap(sim, near: set, active: set) -> None:
    # Spatial-index shape: feeding the scheduler straight from a bucket
    # overlap replays in hash order.
    for index in near.intersection(active):
        sim.schedule(0, index)


def schedule_annotated(sim, pending: set) -> None:
    for index in pending:
        sim.schedule(0, index)
