"""Triggers SL202: event scheduling driven by set iteration order."""


def schedule_all(sim, devices: list) -> None:
    for device in set(devices):
        sim.schedule(0, device.poll)
