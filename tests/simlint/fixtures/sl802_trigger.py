"""Triggers SL802: builtin sum() in a module that also runs numpy math."""
import numpy as np


def mean_power(samples_mw: list) -> float:
    total_mw = sum(samples_mw)
    return total_mw / np.float64(len(samples_mw))
