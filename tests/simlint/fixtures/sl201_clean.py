"""Clean for SL201: key by the object itself (strong ref, no reuse)."""


def remember(cache: dict, device: object, value: float) -> None:
    cache[device] = value
