"""Clean for SL301: timing constants come from the parameter table."""
from repro.core.params import DEFAULT_MAC_PARAMETERS


def deferral_us() -> float:
    return DEFAULT_MAC_PARAMETERS.difs_us
