"""Triggers SL703: converting a value already in the target unit."""
from repro.units import us_to_ns


def schedule_after(delay_ns: int) -> int:
    return us_to_ns(delay_ns)
