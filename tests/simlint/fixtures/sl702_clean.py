"""Clean for SL702: convert to linear milliwatts before summing power."""
from repro.units import dbm_to_mw, mw_to_dbm


def combined_power_dbm(tx_dbm: float, interference_mw: float) -> float:
    total_mw = dbm_to_mw(tx_dbm) + interference_mw
    return mw_to_dbm(total_mw)
