"""Triggers SL702: dBm added to mW — log and linear power mixed."""


def combined_power(tx_dbm: float, interference_mw: float) -> float:
    total = tx_dbm + interference_mw
    return total
