"""Clean for SL102: the fallback generator carries an explicit seed."""
import random

rng = random.Random(42)
