"""Triggers SL401: mutable class attribute shared across instances."""


class FrameCounter:
    seen = []

    def record(self, frame: object) -> None:
        self.seen.append(frame)
