"""Triggers SL705: a bare float literal fed to a *_ns parameter."""


def schedule(delay_ns: int) -> int:
    return delay_ns


def arm() -> int:
    return schedule(1500.5)
