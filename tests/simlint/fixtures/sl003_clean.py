"""Clean for SL003: waiver syntax inside a docstring is documentation.

Example::

    draw = rng.random()  # simlint: waive[SL101] -- demo only

Only real comment tokens count as waivers, so the example above neither
suppresses anything nor goes stale.
"""

value = 1
