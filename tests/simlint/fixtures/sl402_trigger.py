"""Triggers SL402: a lambda handed to the sweep engine."""
from repro.parallel import pmap


def double_all(items: list, jobs: int) -> list:
    return pmap(lambda item: item * 2, items, jobs=jobs)
