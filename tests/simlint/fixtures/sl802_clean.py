"""Clean for SL802: the dual-kernel module reduces with math.fsum."""
import math

import numpy as np


def mean_power(samples_mw: list) -> float:
    total_mw = math.fsum(samples_mw)
    return total_mw / np.float64(len(samples_mw))
