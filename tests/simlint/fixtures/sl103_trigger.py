"""Triggers SL103: wall-clock time leaks into simulation state."""
import time


def stamp() -> float:
    return time.time()
