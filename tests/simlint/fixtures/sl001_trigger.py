"""Triggers SL001: a waiver comment with no justification."""
import random

# simlint: waive[SL102]
rng = random.Random()
