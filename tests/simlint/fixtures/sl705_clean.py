"""Clean for SL705: integer nanoseconds cross the scheduling API."""


def schedule(delay_ns: int) -> int:
    return delay_ns


def arm() -> int:
    return schedule(1_500)
