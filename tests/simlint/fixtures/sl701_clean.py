"""Clean for SL701: units converted at the boundary, not by renaming."""
from repro.units import ns_to_s


def elapsed_seconds(now_ns: int, start_ns: int) -> float:
    elapsed_s = ns_to_s(now_ns - start_ns)
    return elapsed_s
