"""Clean for SL103: time.monotonic() is fine for wall-clock budgets."""
import time


def budget_deadline(max_wall_s: float) -> float:
    return time.monotonic() + max_wall_s
