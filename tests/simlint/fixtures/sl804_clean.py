"""Clean for SL804: the handle is rebound before being consulted again."""


def rearm(sim, slot, seq, delay_ns, handler):
    sim.cancel_slot(slot, seq)
    slot, seq = sim.schedule_slot(delay_ns, handler)
    return sim.slot_active(slot, seq)
