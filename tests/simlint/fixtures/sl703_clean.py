"""Clean for SL703: the converter receives its declared input unit."""
from repro.units import us_to_ns


def schedule_after(delay_us: float) -> int:
    return us_to_ns(delay_us)
