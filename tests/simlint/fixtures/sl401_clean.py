"""Clean for SL401: per-instance state initialised in __init__."""


class FrameCounter:
    def __init__(self) -> None:
        self.seen: list = []

    def record(self, frame: object) -> None:
        self.seen.append(frame)
