"""Triggers SL002: the file does not parse."""

def broken(:
    return None
