"""Triggers SL302: float arithmetic contaminates an integer ns value."""


def stretch(duration_ns: int) -> float:
    return duration_ns * 1.5
