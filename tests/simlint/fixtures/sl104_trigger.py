"""Triggers SL104: import random buried inside a function."""


def make_rng(seed: int):
    import random

    return random.Random(seed)
