"""Clean for SL202: a sorted() wrapper restores a reproducible order."""


def schedule_all(sim, names: list) -> None:
    for name in sorted(set(names)):
        sim.schedule(0, name)


def schedule_overlap(sim, near: set, active: set) -> None:
    for index in sorted(near.intersection(active)):
        sim.schedule(0, index)


def count_annotated(pending: set) -> int:
    # Reductions over sets are order-insensitive and stay silent.
    return len([index for index in pending])
