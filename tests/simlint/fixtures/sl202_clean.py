"""Clean for SL202: a sorted() wrapper restores a reproducible order."""


def schedule_all(sim, names: list) -> None:
    for name in sorted(set(names)):
        sim.schedule(0, name)
