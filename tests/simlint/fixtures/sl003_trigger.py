"""Triggers SL003: a justified waiver that suppresses no finding."""

value = 1  # simlint: waive[SL101] -- nothing here draws randomness
