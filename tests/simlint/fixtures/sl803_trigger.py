"""Triggers SL803: numpy construction fed straight from a set."""
import numpy as np


def as_vector(readings_mw: frozenset):
    levels = set(readings_mw)
    return np.array(levels)
