"""Clean for SL402: sweep work is a picklable module-level function."""
from repro.parallel import pmap


def _double(item: int) -> int:
    return item * 2


def double_all(items: list, jobs: int) -> list:
    return pmap(_double, items, jobs=jobs)
