"""Triggers SL601: hand-wires the simulation kernel instead of a spec."""

from repro.net.node import Node
from repro.phy.medium import Medium
from repro.sim.engine import Simulator


def handwired_network(channel, config):
    sim = Simulator()
    medium = Medium(sim, channel)
    node = Node(sim, medium, address=1, config=config)
    return sim, medium, node
