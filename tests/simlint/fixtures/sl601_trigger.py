"""Triggers SL601: hand-wires the simulation kernel instead of a spec."""

from repro.channel.medium import GridIndex
from repro.net.node import Node
from repro.phy.medium import Medium
from repro.sim.engine import Simulator


def handwired_network(channel, config):
    sim = Simulator()
    medium = Medium(sim, channel)
    node = Node(sim, medium, address=1, config=config)
    return sim, medium, node


def handrolled_spatial_index(devices):
    # The spatial index is the Medium's internal affair — building one
    # outside the channel layer invites scheduler-from-bucket ordering.
    grid = GridIndex(250.0)
    for index, device in enumerate(devices):
        grid.add(index, device.position_m)
    return grid
