"""Triggers SL804: a slot handle reused after cancel_slot consumed it."""


def rearm(sim, slot, seq):
    sim.cancel_slot(slot, seq)
    return sim.slot_active(slot, seq)
