"""Triggers SL102: unseeded random.Random() takes OS entropy."""
import random

rng = random.Random()
