"""Triggers SL701: microseconds assigned to a seconds-suffixed name."""


def airtime_budget(frame_airtime_us: float) -> float:
    budget_s = frame_airtime_us
    return budget_s
