"""Clean for SL704: convert before crossing the call boundary."""
from repro.units import us_to_ns


def schedule(delay_ns: int) -> int:
    return delay_ns


def arm(timeout_us: float) -> int:
    return schedule(us_to_ns(timeout_us))
