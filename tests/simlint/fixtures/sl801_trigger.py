"""Triggers SL801: float accumulation over an unordered set."""


def total_power(readings_mw: frozenset) -> float:
    levels = set(readings_mw)
    return sum(levels)
