"""Clean for SL104: randomness dependency declared at module level."""
import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
