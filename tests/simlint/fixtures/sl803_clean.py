"""Clean for SL803: a sorted list pins the array element order."""
import numpy as np


def as_vector(readings_mw: frozenset):
    return np.array(sorted(readings_mw))
