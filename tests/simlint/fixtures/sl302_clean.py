"""Clean for SL302: scaling stays in integer nanoseconds."""


def stretch(duration_ns: int) -> int:
    return duration_ns * 3 // 2
