"""Triggers SL101: draw from the module-global random generator."""
import random


def jitter_ns() -> int:
    return random.randint(0, 1000)
