"""SL5xx spec conformance: golden table vs. the real parameter module."""

from pathlib import Path

from repro.simlint.checker import Checker, ParsedModule
from repro.simlint.rules.spec import (
    GOLDEN_80211B,
    extract_spec_constants,
    plcp_duration_us,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
REAL_PARAMS = REPO_ROOT / "src" / "repro" / "core" / "params.py"


class TestExtraction:
    def test_real_params_module_matches_golden_table_exactly(self):
        """The shipped constants ARE the paper's Table 1 — key by key."""
        module = ParsedModule.parse(REAL_PARAMS, root=REPO_ROOT / "src")
        constants = extract_spec_constants(module)
        for key, golden in GOLDEN_80211B.items():
            assert constants.get(key) == golden, key

    def test_derived_plcp_durations(self):
        module = ParsedModule.parse(REAL_PARAMS, root=REPO_ROOT / "src")
        constants = extract_spec_constants(module)
        assert plcp_duration_us(constants, "plcp.long") == 192.0
        assert plcp_duration_us(constants, "plcp.short") == 96.0

    def test_extraction_is_purely_syntactic(self, tmp_path):
        # A module that would crash on import still yields its constants.
        path = tmp_path / "core" / "params.py"
        path.parent.mkdir()
        path.write_text(
            "raise RuntimeError('never importable')\n"
            "class MacParameters:\n"
            "    sifs_us: float = 10.0\n",
            encoding="utf-8",
        )
        module = ParsedModule.parse(path, root=tmp_path)
        assert extract_spec_constants(module)["mac.sifs_us"] == 10.0


class TestConformanceRule:
    def test_clean_fixture_passes(self):
        findings = Checker().check_paths(
            [FIXTURES / "spec_clean"], root=FIXTURES
        )
        assert findings == []

    def test_bad_fixture_reports_mismatch_missing_and_derived(self):
        findings = Checker().check_paths([FIXTURES / "spec_bad"], root=FIXTURES)
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule_id, []).append(finding.message)
        # sifs_us = 11.0 and the short-PLCP header rate are outright wrong.
        assert any("mac.sifs_us" in m for m in by_rule["SL501"])
        # ack_bits was deleted.
        assert any("mac.ack_bits" in m for m in by_rule["SL502"])
        # ... and the derived relations break: DIFS ≠ SIFS + 2·slot and
        # the short preamble no longer sums to 96 µs.
        assert any("DIFS" in m for m in by_rule["SL503"])
        assert any("96" in m for m in by_rule["SL503"])

    def test_rule_only_audits_core_params(self, tmp_path):
        # An unrelated params.py (not under core/) is not spec-audited.
        path = tmp_path / "params.py"
        path.write_text("class MacParameters:\n    pass\n", encoding="utf-8")
        findings = Checker().check_paths([path], root=tmp_path)
        assert findings == []
