"""The whole-program layer: naming, imports, unit inference, call bindings."""

import tempfile
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simlint.checker import Checker, ParsedModule
from repro.simlint.project import (
    ProjectGraph,
    converter_units,
    local_unit_violations,
    mixing_violation,
    module_name_for,
    summarize_module,
    unit_from_name,
)


def parse_tree(root: Path, files: dict[str, str]) -> list[ParsedModule]:
    modules = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        modules.append(ParsedModule.parse(path, root=root))
    return modules


class TestUnitModel:
    @pytest.mark.parametrize(
        ("name", "unit"),
        [
            ("delay_us", "us"),
            ("elapsed_s", "s"),
            ("tx_power_dbm", "dbm"),
            ("NS_PER_S", "s"),
            ("s", None),  # bare single letters are not units
            ("ns", None),
            ("total", None),
            ("bonus", None),  # suffix must be underscore-separated
        ],
    )
    def test_unit_from_name(self, name, unit):
        assert unit_from_name(name) == unit

    @pytest.mark.parametrize(
        ("name", "units"),
        [
            ("us_to_ns", ("us", "ns")),
            ("dbm_to_mw", ("dbm", "mw")),
            ("db_to_linear", ("db", None)),
            ("mbps_to_bps", ("mbps", "bps")),
            ("schedule", None),
            ("foo_to_bar", None),
        ],
    )
    def test_converter_units(self, name, units):
        assert converter_units(name) == units

    def test_mixing_rules(self):
        assert mixing_violation("ns", "s")[0] == "SL701"
        assert mixing_violation("dbm", "mw")[0] == "SL702"
        assert mixing_violation("mw", "db")[0] == "SL702"
        assert mixing_violation("dbm", "db") is None  # gain applied to a level
        assert mixing_violation("ns", "ns") is None
        assert mixing_violation(None, "ns") is None
        assert mixing_violation("1", "ns") is None


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_for("repro/phy/kernel.py") == ("repro.phy.kernel", False)

    def test_package_init(self):
        assert module_name_for("repro/sim/__init__.py") == ("repro.sim", True)

    def test_top_level_file(self):
        assert module_name_for("snippet.py") == ("snippet", False)


SCHED_TREE = {
    "pkg/__init__.py": """\
        from pkg.sched import schedule
        """,
    "pkg/sched.py": """\
        def schedule(delay_ns: int) -> int:
            return delay_ns
        """,
    "pkg/timer.py": """\
        from .sched import schedule


        def arm(timeout_us: float) -> int:
            return schedule(timeout_us)
        """,
    "app.py": """\
        import pkg.sched as sched


        def go(timeout_us: float) -> int:
            return sched.schedule(timeout_us)
        """,
    "reexp.py": """\
        import pkg


        def go2(timeout_us: float) -> int:
            return pkg.schedule(timeout_us)
        """,
}


class TestImportResolution:
    def test_call_resolution_through_every_import_shape(self, tmp_path):
        modules = parse_tree(tmp_path, SCHED_TREE)
        graph = ProjectGraph.from_modules(modules)
        assert "pkg.sched.schedule" in graph.functions
        by_module = {summary.module: summary for summary in graph.summaries.values()}

        # Relative from-import, aliased module import, package re-export.
        for caller, callee in [
            ("pkg.timer", "schedule"),
            ("app", "sched.schedule"),
            ("reexp", "pkg.schedule"),
        ]:
            sig = graph.resolve_call(by_module[caller], callee)
            assert sig is not None, (caller, callee)
            assert sig.module == "pkg.sched"
            assert sig.name == "schedule"

    def test_unresolvable_call_is_skipped(self, tmp_path):
        modules = parse_tree(tmp_path, SCHED_TREE)
        graph = ProjectGraph.from_modules(modules)
        summary = summarize_module(modules[-1])
        assert graph.resolve_call(summary, "missing.thing") is None


class TestCrossModuleRules:
    def test_sl704_fires_across_every_import_shape(self, tmp_path):
        parse_tree(tmp_path, SCHED_TREE)
        findings = Checker().check_paths([tmp_path], root=tmp_path)
        sl704 = [f for f in findings if f.rule_id == "SL704"]
        assert {f.path for f in sl704} == {"pkg/timer.py", "app.py", "reexp.py"}
        assert all("timeout_us" not in f.path for f in sl704)
        assert {f.rule_id for f in findings} == {"SL704"}

    def test_sl705_fires_on_float_literal_crossing_modules(self, tmp_path):
        parse_tree(
            tmp_path,
            {
                "sched.py": """\
                    def schedule(delay_ns: int) -> int:
                        return delay_ns
                    """,
                "caller.py": """\
                    from sched import schedule


                    def arm() -> int:
                        return schedule(250.5)
                    """,
            },
        )
        findings = Checker().check_paths([tmp_path], root=tmp_path)
        assert {f.rule_id for f in findings} == {"SL705"}
        (finding,) = findings
        assert finding.path == "caller.py"

    def test_project_findings_honour_waivers(self, tmp_path):
        parse_tree(
            tmp_path,
            {
                "sched.py": """\
                    def schedule(delay_ns: int) -> int:
                        return delay_ns
                    """,
                "caller.py": """\
                    from sched import schedule


                    def arm(timeout_us: float) -> int:
                        return schedule(timeout_us)  # simlint: waive[SL704] -- legacy µs API
                    """,
            },
        )
        findings = Checker().check_paths([tmp_path], root=tmp_path)
        (finding,) = [f for f in findings if f.rule_id == "SL704"]
        assert finding.waived
        assert finding.waiver_reason == "legacy µs API"


# -- unit inference is a function of the code, not of import order ---------

IMPORT_LINES = (
    "import math",
    "from repro.units import us_to_ns",
    "from repro.units import dbm_to_mw",
    "from repro import units",
)

INFERENCE_BODY = """

def arm(timeout_us: float) -> int:
    delay_ns = us_to_ns(timeout_us)
    return delay_ns


def bad_power(tx_dbm: float, noise_mw: float) -> float:
    return tx_dbm + noise_mw
"""


def _inference_fingerprint(import_order: tuple[str, ...]):
    source = "\n".join(import_order) + "\n" + INFERENCE_BODY
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "perm.py"
        path.write_text(source, encoding="utf-8")
        module = ParsedModule.parse(path, root=Path(scratch))
        summary = summarize_module(module)
        return summary.functions, tuple(local_unit_violations(module))


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(IMPORT_LINES))
def test_unit_inference_is_stable_under_import_reordering(order):
    baseline = _inference_fingerprint(IMPORT_LINES)
    permuted = _inference_fingerprint(tuple(order))
    assert permuted == baseline
    # The seeded SL702 is found regardless of import order.
    assert any(v[0] == "SL702" for v in permuted[1])
