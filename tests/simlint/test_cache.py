"""The per-file result cache and the multi-process lint path."""

import textwrap

import pytest

from repro.simlint.cache import (
    LintCache,
    result_from_json,
    result_to_json,
    rules_version_tag,
)
from repro.simlint.checker import Checker, FileResult, Finding

TRIGGER = """\
    import random

    draw = random.random()
"""

CLEAN = """\
    def double(value: float) -> float:
        return value * 2.0
"""


def write_tree(root, files):
    for name, source in files.items():
        (root / name).write_text(textwrap.dedent(source), encoding="utf-8")


class TestRoundTrip:
    def test_file_result_survives_json(self, tmp_path):
        write_tree(tmp_path, {"snippet.py": TRIGGER})
        result = Checker().check_file(tmp_path / "snippet.py", root=tmp_path)
        assert result.summary is not None
        assert result_from_json(result_to_json(result)) == result

    def test_cache_get_put(self, tmp_path):
        write_tree(tmp_path, {"snippet.py": TRIGGER})
        path = tmp_path / "snippet.py"
        result = Checker().check_file(path, root=tmp_path)
        cache = LintCache(tmp_path / "cache")
        key = cache.content_hash(path)
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) == result

    def test_version_tag_is_stable_and_short(self):
        assert rules_version_tag() == rules_version_tag()
        assert len(rules_version_tag()) == 16


class TestCachedLint:
    def test_cache_hits_are_served_without_relinting(self, tmp_path):
        source_dir = tmp_path / "src"
        source_dir.mkdir()
        write_tree(source_dir, {"snippet.py": CLEAN})
        path = source_dir / "snippet.py"
        cache = LintCache(tmp_path / "cache")

        marker = FileResult(
            relpath="snippet.py",
            findings=(
                Finding(
                    rule_id="SL999",
                    path="snippet.py",
                    line=1,
                    col=0,
                    message="served from cache",
                ),
            ),
            summary=None,
            used_waiver_lines=(),
        )
        cache.put(cache.content_hash(path), marker)
        findings = Checker().check_paths([source_dir], root=source_dir, cache=cache)
        assert [f.rule_id for f in findings] == ["SL999"]

    def test_stale_entries_miss_on_content_change(self, tmp_path):
        source_dir = tmp_path / "src"
        source_dir.mkdir()
        write_tree(source_dir, {"snippet.py": CLEAN})
        path = source_dir / "snippet.py"
        cache = LintCache(tmp_path / "cache")

        assert Checker().check_paths([source_dir], root=source_dir, cache=cache) == []
        path.write_text(textwrap.dedent(TRIGGER), encoding="utf-8")
        findings = Checker().check_paths([source_dir], root=source_dir, cache=cache)
        assert [f.rule_id for f in findings] == ["SL101"]

    def test_entry_keyed_on_relpath_not_reused_across_roots(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b" / "nested"
        dir_a.mkdir()
        dir_b.mkdir(parents=True)
        write_tree(dir_a, {"snippet.py": TRIGGER})
        write_tree(dir_b, {"snippet.py": TRIGGER})
        cache = LintCache(tmp_path / "cache")

        first = Checker().check_paths([dir_a], root=dir_a, cache=cache)
        # Same bytes, different root-relative path: must re-lint, not
        # replay the other file's findings under the wrong path.
        second = Checker().check_paths(
            [dir_b], root=tmp_path / "b", cache=cache
        )
        assert [f.path for f in first] == ["snippet.py"]
        assert [f.path for f in second] == ["nested/snippet.py"]


class TestParallelLint:
    def test_jobs_match_serial_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "trigger.py": TRIGGER,
                "clean.py": CLEAN,
                "broken.py": "def broken(:\n",
            },
        )
        serial = Checker().check_paths([tmp_path], root=tmp_path, jobs=1)
        parallel = Checker().check_paths([tmp_path], root=tmp_path, jobs=2)
        assert parallel == serial
        assert {f.rule_id for f in serial} == {"SL101", "SL002"}

    def test_jobs_require_the_default_rule_set(self, tmp_path):
        from repro.simlint.rules.determinism import ModuleGlobalRandomRule

        write_tree(tmp_path, {"trigger.py": TRIGGER})
        checker = Checker(rules=[ModuleGlobalRandomRule()])
        with pytest.raises(ValueError):
            checker.check_paths([tmp_path], root=tmp_path, jobs=2)


class TestParseErrorPaths:
    def test_sl002_reports_root_relative_path(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def broken(:\n"})
        (finding,) = Checker().check_paths([tmp_path], root=tmp_path)
        assert finding.rule_id == "SL002"
        assert finding.path == "broken.py"
