"""Tests for the tracing hub."""

from repro.sim.tracing import Tracer


class TestTracer:
    def test_disabled_by_default_but_counts(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit(0, "mac", "tx_start", frame="data")
        assert tracer.count("mac.tx_start") == 1

    def test_subscriber_receives_records(self):
        tracer = Tracer()
        records = []
        tracer.subscribe(records.append)
        tracer.emit(100, "phy", "rx_drop", reason="collision")
        assert len(records) == 1
        assert records[0].time_ns == 100
        assert records[0].category == "phy"
        assert records[0].fields["reason"] == "collision"

    def test_prefix_filtering(self):
        tracer = Tracer()
        mac_records = []
        tracer.subscribe(mac_records.append, prefix="mac.")
        tracer.emit(0, "mac", "tx_start")
        tracer.emit(0, "phy", "rx_start")
        assert [r.event for r in mac_records] == ["tx_start"]

    def test_unsubscribe(self):
        tracer = Tracer()
        records = []
        tracer.subscribe(records.append)
        tracer.unsubscribe(records.append)
        tracer.emit(0, "mac", "tx_start")
        assert records == []
        assert not tracer.enabled

    def test_counters_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.emit(0, "mac", "retry")
        tracer.emit(0, "mac", "drop")
        assert tracer.counters() == {"mac.retry": 3, "mac.drop": 1}

    def test_reset_counters(self):
        tracer = Tracer()
        tracer.emit(0, "a", "b")
        tracer.reset_counters()
        assert tracer.count("a.b") == 0
        assert tracer.counters() == {}

    def test_record_str_is_readable(self):
        tracer = Tracer()
        records = []
        tracer.subscribe(records.append)
        tracer.emit(1_000_000, "mac", "ack", dst=3)
        assert "mac.ack" in str(records[0])
        assert "dst=3" in str(records[0])
