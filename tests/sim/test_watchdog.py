"""Engine guards: watchdog budgets, shutdown, invariant hook."""

import pytest

from repro.errors import SchedulingError, SimulationError, WatchdogTimeout
from repro.sim.engine import Simulator, Watchdog


def spin(sim):
    """An event that reschedules itself forever at the same instant."""
    sim.schedule(0, spin, sim)


class TestEventBudget:
    def test_event_budget_raises(self):
        sim = Simulator(watchdog=Watchdog(max_events=500))
        spin(sim)
        with pytest.raises(WatchdogTimeout, match="budget 500"):
            sim.run()

    def test_budget_is_per_run_not_cumulative(self):
        sim = Simulator(watchdog=Watchdog(max_events=10))
        for index in range(8):
            sim.schedule(index + 1, lambda: None)
        sim.run()  # 8 events: inside budget
        for index in range(8):
            sim.schedule(index + 1, lambda: None)
        sim.run()  # fresh budget per run() call
        assert sim.events_processed == 16

    def test_normal_run_unaffected_under_budget(self):
        sim = Simulator(watchdog=Watchdog(max_events=100))
        fired = []
        sim.schedule(5, fired.append, "a")
        sim.run(until_ns=10)
        assert fired == ["a"]
        assert sim.now_ns == 10

    def test_max_events_run_argument_still_breaks_quietly(self):
        # The run(max_events=...) pagination API predates the watchdog
        # and must keep its silent-break semantics.
        sim = Simulator(watchdog=Watchdog(max_events=50))
        spin(sim)
        sim.run(max_events=10)
        assert sim.events_processed == 10


class TestWallClockBudget:
    def test_wall_clock_budget_raises_on_livelock(self):
        sim = Simulator(
            watchdog=Watchdog(max_wall_s=0.05, wall_check_interval=64)
        )
        spin(sim)
        with pytest.raises(WatchdogTimeout, match="wall-clock"):
            sim.run()


class TestInvariantHook:
    def test_invariant_returning_false_raises(self):
        sim = Simulator(
            watchdog=Watchdog(
                invariant=lambda s: s.events_processed < 30,
                invariant_interval=10,
            )
        )
        spin(sim)
        with pytest.raises(SimulationError, match="invariant violated"):
            sim.run()

    def test_invariant_exception_propagates(self):
        def check(sim):
            raise ValueError("inconsistent NAV")

        sim = Simulator(watchdog=Watchdog(invariant=check, invariant_interval=5))
        spin(sim)
        with pytest.raises(ValueError, match="inconsistent NAV"):
            sim.run()

    def test_healthy_invariant_does_not_interfere(self):
        calls = []
        sim = Simulator(
            watchdog=Watchdog(invariant=lambda s: calls.append(1) or True,
                              invariant_interval=10)
        )
        for index in range(35):
            sim.schedule(index + 1, lambda: None)
        sim.run()
        assert sim.events_processed == 35
        assert len(calls) == 3  # at events 10, 20, 30


class TestShutdown:
    def test_schedule_after_shutdown_raises(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.shutdown()
        with pytest.raises(SchedulingError, match="shut-down"):
            sim.schedule(200, lambda: None)
        with pytest.raises(SchedulingError, match="shut-down"):
            sim.schedule_at(500, lambda: None)

    def test_run_after_shutdown_raises(self):
        sim = Simulator()
        sim.shutdown()
        with pytest.raises(SchedulingError):
            sim.run(until_s=1.0)

    def test_shutdown_drops_pending_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "never")
        sim.shutdown()
        assert sim.pending_events == 0
        assert fired == []

    def test_shutdown_from_inside_an_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, sim.shutdown)
        sim.schedule(200, fired.append, "after")
        sim.run()
        assert fired == []


class TestHandleCancellation:
    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        handle.cancel()  # already fired: must be a no-op
        handle.cancel()  # and idempotent
        assert handle.cancelled
        sim.schedule(20, fired.append, "y")
        sim.run()
        assert fired == ["x", "y"]

    def test_cancel_before_fire_still_works(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
