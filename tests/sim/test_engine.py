"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(300, fired.append, "c")
        sim.schedule(100, fired.append, "a")
        sim.schedule(200, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(100, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(150, lambda: seen.append(sim.now_ns))
        sim.run()
        assert seen == [150]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(50, lambda: fired.append("second"))

        sim.schedule(100, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now_ns == 150

    def test_schedule_s_converts_seconds(self):
        sim = Simulator()
        sim.schedule_s(1.5, lambda: None)
        sim.run()
        assert sim.now_ns == 1_500_000_000
        assert sim.now_s == pytest.approx(1.5)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(100, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        handle = sim.schedule(200, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_pending_events_counts_down_as_events_fire(self):
        sim = Simulator()
        seen = []
        for delay in (100, 200, 300):
            sim.schedule(delay, lambda: seen.append(sim.pending_events))
        assert sim.pending_events == 3
        sim.run()
        # Each callback observes the events still queued behind it.
        assert seen == [2, 1, 0]
        assert sim.pending_events == 0

    def test_pending_events_after_double_cancel_and_clear(self):
        # The live counter must not double-decrement on repeated
        # cancels or on clear() after manual cancels.
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1
        sim.clear()
        assert sim.pending_events == 0
        sim.schedule_at(sim.now_ns + 1, lambda: None)
        assert sim.pending_events == 1

    def test_cancel_after_fire_keeps_counter_consistent(self):
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        handle.cancel()  # firing already consumed the event
        assert sim.pending_events == 0

    def test_clear_drops_everything(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "x")
        sim.clear()
        sim.run()
        assert fired == []


class TestRunControl:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(300, fired.append, "b")
        sim.run(until_ns=200)
        assert fired == ["a"]
        assert sim.now_ns == 200

    def test_until_preserves_later_events_for_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(300, fired.append, "b")
        sim.run(until_ns=200)
        sim.run()
        assert fired == ["a", "b"]

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(200, fired.append, "edge")
        sim.run(until_ns=200)
        assert fired == ["edge"]

    def test_until_s_form(self):
        sim = Simulator()
        sim.run(until_s=2.0)
        assert sim.now_s == pytest.approx(2.0)

    def test_both_horizons_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().run(until_ns=10, until_s=1.0)

    def test_horizon_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.run(until_ns=50)

    def test_stop_from_inside_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: (fired.append("a"), sim.stop()))
        sim.schedule(200, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_max_events_limit(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(100 + i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestOrderingProperty:
    @given(delays=st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_fire_times_are_sorted(self, delays):
        sim = Simulator()
        fire_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fire_times.append(sim.now_ns))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=2, max_size=40
        ),
        cancel_index=st.integers(min_value=0, max_value=39),
    )
    def test_cancelling_one_event_leaves_others(self, delays, cancel_index):
        if cancel_index >= len(delays):
            cancel_index = len(delays) - 1
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(delay, fired.append, i) for i, delay in enumerate(delays)
        ]
        handles[cancel_index].cancel()
        sim.run()
        assert set(fired) == set(range(len(delays))) - {cancel_index}


class TestSlotRecycling:
    """Edge cases of the slot/token storage behind EventHandle.

    Slots are recycled through a free-list; the monotonically increasing
    sequence token is what distinguishes "this event" from "whatever now
    occupies the same slot".  Every stale-handle operation must be a safe
    no-op.
    """

    def test_cancel_then_fire_same_slot(self):
        # Cancelling releases the slot; the next schedule may reuse it.
        # The replacement event must fire, the cancelled one must not.
        sim = Simulator()
        fired = []
        first = sim.schedule(100, fired.append, "cancelled")
        first.cancel()
        sim.schedule(100, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]

    def test_stale_handle_cannot_cancel_slot_reuser(self):
        # A handle whose event was cancelled must not be able to kill the
        # unrelated event now living in the recycled slot.
        sim = Simulator()
        fired = []
        stale = sim.schedule(100, fired.append, "old")
        stale.cancel()
        sim.schedule(50, fired.append, "new")  # takes the freed slot
        stale.cancel()  # second cancel: stale token, must be a no-op
        sim.run()
        assert fired == ["new"]

    def test_stale_handle_after_fire_cannot_cancel_reuser(self):
        # Same as above, but the slot is released by *firing*, not by an
        # explicit cancel.
        sim = Simulator()
        fired = []
        stale = sim.schedule(10, fired.append, "first")
        sim.run()
        later = sim.schedule(10, fired.append, "second")
        stale.cancel()  # must not touch "second" even if slots collide
        sim.run()
        assert fired == ["first", "second"]
        assert later.cancelled

    def test_cancel_at_now_before_dispatch(self):
        # An event scheduled for *now* (delay 0) can still be cancelled
        # as long as the loop has not dispatched it.
        sim = Simulator()
        fired = []

        def cancel_sibling():
            sibling.cancel()

        # Same timestamp, scheduling order: canceller runs first.
        sim.schedule(100, cancel_sibling)
        sibling = sim.schedule(100, fired.append, "sibling")
        sim.run()
        assert fired == []
        assert sibling.cancelled

    def test_cancel_twice_reports_first_only(self):
        sim = Simulator()
        slot, seq = sim.schedule_slot(100, lambda: None)
        assert sim.cancel_slot(slot, seq) is True
        assert sim.cancel_slot(slot, seq) is False
        assert sim.pending_events == 0

    def test_handle_cancelled_property_tracks_slot_state(self):
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        assert not handle.cancelled
        sim.run()
        assert handle.cancelled  # fired counts as no-longer-pending

    def test_free_list_reuses_slots_bounded(self):
        # Churning schedule/cancel through a small window must not grow
        # the slot arrays without bound.
        sim = Simulator()
        for _ in range(10_000):
            sim.schedule(100, lambda: None).cancel()
        assert len(sim._slot_token) < 64
        sim.run()
        assert sim.pending_events == 0
