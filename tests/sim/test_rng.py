"""Tests for reproducible named random streams."""

from repro.sim.rng import RngManager


class TestRngManager:
    def test_same_seed_same_draws(self):
        a = RngManager(42).stream("backoff")
        b = RngManager(42).stream("backoff")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_different_draws(self):
        manager = RngManager(42)
        xs = [manager.stream("backoff").random() for _ in range(5)]
        ys = [manager.stream("shadowing").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_give_different_draws(self):
        a = RngManager(1).stream("s")
        b = RngManager(2).stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        manager = RngManager(7)
        assert manager.stream("x") is manager.stream("x")

    def test_adding_consumer_does_not_perturb_existing_stream(self):
        lone = RngManager(42)
        draws_alone = [lone.stream("a").random() for _ in range(5)]
        shared = RngManager(42)
        shared.stream("b").random()  # a second consumer appears
        draws_shared = [shared.stream("a").random() for _ in range(5)]
        assert draws_alone == draws_shared

    def test_fork_is_deterministic_and_independent(self):
        base = RngManager(42)
        fork1 = base.fork("rep1")
        fork1_again = RngManager(42).fork("rep1")
        assert fork1.master_seed == fork1_again.master_seed
        assert fork1.master_seed != base.master_seed
        assert fork1.master_seed != base.fork("rep2").master_seed
