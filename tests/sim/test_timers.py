"""Tests for restartable timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now_ns), name="t")
        timer.start(500)
        sim.run()
        assert fired == [500]
        assert timer.name == "t"

    def test_not_running_after_fire(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(100)
        assert timer.running
        sim.run()
        assert not timer.running
        assert timer.expiry_ns is None

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append)
        timer.start(100, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_when_idle_is_safe(self):
        Timer(Simulator(), lambda: None).cancel()

    def test_restart_supersedes_previous_schedule(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append)
        timer.start(100, "early")
        timer.start(300, "late")
        sim.run()
        assert fired == ["late"]
        assert sim.now_ns == 300

    def test_restart_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire(count):
            fired.append(sim.now_ns)
            if count > 0:
                timer.start(100, count - 1)

        timer = Timer(sim, on_fire)
        timer.start(100, 2)
        sim.run()
        assert fired == [100, 200, 300]

    def test_arguments_passed_per_start(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda a, b: fired.append((a, b)))
        timer.start(10, 1, 2)
        sim.run()
        assert fired == [(1, 2)]

    def test_expiry_ns_reports_absolute_time(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run()
        timer = Timer(sim, lambda: None)
        timer.start(100)
        assert timer.expiry_ns == 150

    def test_start_s(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now_s))
        timer.start_s(0.25)
        sim.run()
        assert fired == [pytest.approx(0.25)]
