"""Tests for the CLI front-end and the experiment registry."""

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        paper_artefacts = {
            "table2",
            "figure2",
            "figure3",
            "figure4",
            "table3",
            "figure7",
            "figure9",
            "figure11",
            "figure12",
        }
        diagrams = {"figure1", "scenarios"}
        extensions = {
            "arf", "delay", "link-lifetime", "multihop", "density",
            "mac-surface",
        }
        resilience = {"fault-blackout", "fault-crash"}
        assert (
            paper_artefacts | diagrams | extensions | resilience
            == set(EXPERIMENTS)
        )

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(ExperimentError, match="figure2"):
            get_experiment("figure99")

    def test_every_experiment_has_description(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "figure12" in out

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "3.060" in out

    def test_figure2_quick_run(self, capsys):
        assert main(["figure2", "--duration", "0.6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["nonsense"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        # One line of diagnosis, not a traceback dump.
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_report_file_written(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["table2", "--report", str(report_path)]) == 0
        import json

        report = json.loads(report_path.read_text())
        assert report["succeeded"] == 1
        assert report["results"][0]["name"] == "table2"
        assert report["results"][0]["status"] == "ok"

    def test_failure_yields_one_line_error_and_nonzero_exit(self, capsys):
        # A negative horizon raises SchedulingError inside the experiment;
        # the runner must degrade it to a one-line error, not a traceback.
        assert main(["figure2", "--duration", "-1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: figure2:")
        assert "Traceback" not in err


def _table_lines(out: str) -> list[str]:
    # Drop the wall-clock status line; only it may vary between runs.
    return [line for line in out.splitlines() if not line.startswith("[")]


class TestSweepFlags:
    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["table2", "--no-cache"]) == 0
        serial = _table_lines(capsys.readouterr().out)
        assert main(["table2", "--no-cache", "--jobs", "2"]) == 0
        parallel = _table_lines(capsys.readouterr().out)
        assert serial == parallel

    def test_warm_cache_output_identical(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["table2", "--cache-dir", cache_dir]) == 0
        cold = _table_lines(capsys.readouterr().out)
        assert main(["table2", "--cache-dir", cache_dir]) == 0
        warm = _table_lines(capsys.readouterr().out)
        assert cold == warm

    def test_clear_cache_reports_removed_points(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["table2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["list", "--cache-dir", cache_dir, "--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert cache_dir in out


class TestRobustnessFlags:
    def test_resume_without_journal_exits_2(self, capsys):
        assert main(["table2", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume needs --journal" in err

    def test_journal_written_with_point_records(self, capsys, tmp_path):
        import json

        journal = tmp_path / "sweep.jsonl"
        assert main(["table2", "--journal", str(journal)]) == 0
        capsys.readouterr()
        documents = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        assert any(doc.get("type") == "sweep-start" for doc in documents)
        points = [doc for doc in documents if doc.get("type") == "point"]
        assert points and all(doc["status"] == "ok" for doc in points)
        assert any(doc.get("type") == "sweep-end" for doc in documents)

    def test_resumed_run_output_identical(self, capsys, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        cache_dir = str(tmp_path / "cache")
        argv = ["table2", "--cache-dir", cache_dir, "--journal", str(journal)]
        assert main(argv) == 0
        first = _table_lines(capsys.readouterr().out)
        assert main(argv + ["--resume"]) == 0
        resumed = _table_lines(capsys.readouterr().out)
        assert first == resumed

    def test_max_retries_alias_accepted(self, capsys):
        assert main(["table2", "--max-retries", "0"]) == 0


class TestProfileCommand:
    def test_profile_without_target_exits_2(self, capsys):
        assert main(["profile"]) == 2
        err = capsys.readouterr().err
        assert "profile needs an experiment name" in err

    def test_profile_table2(self, capsys):
        assert main(["profile", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("profile: table2")
        assert "ncalls" in out

    def test_profile_unknown_target_exits_1(self, capsys):
        assert main(["profile", "figure99"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
