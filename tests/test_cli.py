"""Tests for the CLI front-end and the experiment registry."""

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        paper_artefacts = {
            "table2",
            "figure2",
            "figure3",
            "figure4",
            "table3",
            "figure7",
            "figure9",
            "figure11",
            "figure12",
        }
        diagrams = {"figure1", "scenarios"}
        extensions = {"arf", "delay", "link-lifetime"}
        assert paper_artefacts | diagrams | extensions == set(EXPERIMENTS)

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(ExperimentError, match="figure2"):
            get_experiment("figure99")

    def test_every_experiment_has_description(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "figure12" in out

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "3.060" in out

    def test_figure2_quick_run(self, capsys):
        assert main(["figure2", "--duration", "0.6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["nonsense"]) == 1
        assert "error" in capsys.readouterr().err
