"""Unit tests for the online invariant auditors.

Each test synthesises the exact trace stream that would (or would not)
violate one invariant and checks the auditor's verdict, including the
sim-time stamp in the violation message.
"""

from __future__ import annotations

import pytest

from repro.errors import AuditError
from repro.obs.auditors import AirtimeAuditor, NavAuditor, TcpMonotonicAuditor
from repro.sim.tracing import TraceRecord


def rec(time_ns, category, event, **fields):
    return TraceRecord(time_ns, category, event, fields)


class TestNavAuditor:
    def test_future_nav_passes(self):
        auditor = NavAuditor()
        auditor.on_record(rec(1000, "mac.1", "nav", until_ns=5000))
        assert auditor.violations == []

    def test_nav_into_the_past_violates(self):
        auditor = NavAuditor()
        auditor.on_record(rec(1000, "mac.1", "nav", until_ns=900))
        assert len(auditor.violations) == 1
        assert "NavAuditor" in auditor.violations[0]
        assert "[t=0.000001s]" in auditor.violations[0]

    def test_other_mac_events_are_ignored(self):
        auditor = NavAuditor()
        auditor.on_record(rec(1000, "mac.1", "tx_start", dur_ns=-5))
        assert auditor.violations == []

    def test_on_violation_callback_fires_immediately(self):
        auditor = NavAuditor()

        def boom(message):
            raise AuditError(message)

        auditor.on_violation = boom
        with pytest.raises(AuditError, match="NAV"):
            auditor.on_record(rec(1000, "mac.1", "nav", until_ns=0))


class TestTcpMonotonicAuditor:
    def state(self, t, una, nxt, rcv, cat="tcp.1:5001"):
        return rec(t, cat, "state", snd_una=una, snd_nxt=nxt, rcv_nxt=rcv)

    def test_forward_progress_passes(self):
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 0, 100, 0))
        auditor.on_record(self.state(20, 100, 200, 50))
        assert auditor.violations == []

    def test_snd_una_moving_backwards_violates(self):
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 100, 200, 0))
        auditor.on_record(self.state(20, 50, 200, 0))
        assert any("snd_una moved backwards" in v for v in auditor.violations)

    def test_rcv_nxt_moving_backwards_violates(self):
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 0, 0, 500))
        auditor.on_record(self.state(20, 0, 0, 400))
        assert any("rcv_nxt moved backwards" in v for v in auditor.violations)

    def test_snd_una_overtaking_snd_nxt_violates(self):
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 300, 200, 0))
        assert any("overtook" in v for v in auditor.violations)

    def test_reopen_resets_the_sequence_baseline(self):
        # A crash-reboot cycle restarts the flow on the same port; the
        # fresh connection legitimately starts back at sequence 0.
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 5000, 6000, 7000))
        auditor.on_record(rec(20, "tcp.1:5001", "open", role="active", peer=2))
        auditor.on_record(self.state(30, 0, 100, 0))
        assert auditor.violations == []

    def test_connections_are_tracked_independently(self):
        auditor = TcpMonotonicAuditor()
        auditor.on_record(self.state(10, 900, 900, 900, cat="tcp.1:5001"))
        auditor.on_record(self.state(20, 0, 100, 0, cat="tcp.2:5001"))
        assert auditor.violations == []


class TestAirtimeAuditor:
    def tx(self, t, dur, cat="phy.n1"):
        return rec(t, cat, "tx_start", dur_ns=dur)

    def test_sequential_transmissions_pass(self):
        auditor = AirtimeAuditor()
        auditor.on_record(self.tx(0, 100))
        auditor.on_record(self.tx(200, 100))
        auditor.finalize(end_ns=1000)
        assert auditor.violations == []
        assert auditor.union_busy_ns == 200

    def test_half_duplex_overlap_violates(self):
        auditor = AirtimeAuditor()
        auditor.on_record(self.tx(0, 500))
        auditor.on_record(self.tx(100, 100))  # starts mid-transmission
        assert any("previous one runs until" in v for v in auditor.violations)

    def test_cumulative_airtime_beyond_the_clock_violates(self):
        auditor = AirtimeAuditor()
        # Consistent per-event, but the running total outruns the clock.
        auditor.on_record(self.tx(0, 1000))
        auditor.on_record(self.tx(1000, 1000))
        auditor.on_record(self.tx(1500, 100))
        assert any("accumulated" in v for v in auditor.violations)

    def test_stations_occupy_the_union_not_the_sum(self):
        auditor = AirtimeAuditor()
        auditor.on_record(self.tx(0, 1000, cat="phy.n1"))
        auditor.on_record(self.tx(500, 1000, cat="phy.n2"))  # overlaps n1
        auditor.finalize(end_ns=10_000)
        assert auditor.violations == []
        assert auditor.union_busy_ns == 1500

    def test_finalize_catches_medium_overcommit(self):
        # The union accumulator cannot overrun its own end through
        # on_record, so the finalize check is a defensive backstop;
        # poke the counter directly to prove it still fires.
        auditor = AirtimeAuditor()
        auditor.on_record(self.tx(0, 600, cat="phy.n1"))
        auditor._union_busy_ns = 5000
        auditor.finalize(end_ns=1000)
        assert any("medium occupied" in v for v in auditor.violations)

    def test_non_tx_events_are_ignored(self):
        auditor = AirtimeAuditor()
        auditor.on_record(rec(10, "phy.n1", "rx_end", ok=True))
        auditor.finalize(end_ns=100)
        assert auditor.violations == []
