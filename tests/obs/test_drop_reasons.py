"""Every typed drop reason, produced by a real network.

One deterministic scenario per terminal state: the point is that the
taxonomy is *reachable* and that each recipe's books still balance
exactly — no SDU leaked, none double-counted.
"""

from __future__ import annotations

from repro.obs.ledger import DROP_REASONS

from tests.obs.util import (
    bulk_tcp_spec,
    crash_spec,
    hidden_terminal_spec,
    out_of_range_spec,
    run_audited,
    saturated_spec,
    tiny_queue_spec,
    two_node_udp_spec,
)


def report_of(spec, after=None):
    net = run_audited(spec) if after is None else after(spec)
    report = net.recorder.report
    assert report is not None, "recorder was never finalized"
    assert report.balanced, report.problems
    assert report.violations == ()
    closed = report.delivered + sum(report.drops.values())
    assert closed == report.opened
    return report


def test_clean_link_delivers():
    report = report_of(two_node_udp_spec())
    assert report.delivered > 0
    assert report.drops["retry-limit"] == 0
    assert report.drops["rx-collision"] == 0


def test_hidden_terminal_produces_rx_collision():
    report = report_of(hidden_terminal_spec())
    assert report.drops["rx-collision"] > 0


def test_out_of_range_link_produces_pure_retry_limit():
    report = report_of(out_of_range_spec())
    assert report.drops["retry-limit"] > 0
    # No frame ever locked at the receiver, so nothing can be blamed on
    # a collision.
    assert report.drops["rx-collision"] == 0
    assert report.delivered == 0


def test_tiny_queue_produces_queue_overflow():
    report = report_of(tiny_queue_spec())
    assert report.drops["queue-overflow"] > 0
    assert report.delivered > 0


def test_node_crash_produces_fault_crash_and_never_leaks():
    report = report_of(crash_spec())
    assert report.drops["fault-crash"] > 0
    assert report.delivered > 0
    # The one permitted racy anomaly: a frame already in the air when
    # the MAC was flushed may still be received.
    assert set(report.anomalies) <= {"deliver-after-crash"}


def test_tcp_abort_reclassifies_in_flight_segments():
    from repro.scenario import build

    spec = bulk_tcp_spec()
    net = build(spec)
    net.run(spec.duration_s)
    net[0].tcp.abort_all()
    net.sim.shutdown()
    report = net.recorder.report
    assert report.balanced, report.problems
    assert report.drops["tcp-abort"] > 0


def test_saturated_run_ends_with_sdus_in_flight():
    report = report_of(saturated_spec())
    assert report.drops["sim-end-in-flight"] > 0


def test_breakdown_covers_only_known_reasons():
    report = report_of(hidden_terminal_spec(duration_s=1.0))
    assert set(report.drops) == set(DROP_REASONS)


def test_unreachable_destination_produces_no_route():
    from tests.obs.util import no_route_spec

    report = report_of(no_route_spec())
    assert report.drops["no-route"] > 0
    assert report.delivered == 0
    # The route miss happens before the MAC: nothing was ever on the air.
    assert report.drops["retry-limit"] == 0
