"""The ``repro80211 audit`` command surface."""

from __future__ import annotations

from repro.cli import main


def test_audit_command_prints_the_verdict(capsys):
    code = main(["audit", "figure2", "--duration", "1.5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Audit: figure2" in out
    assert "ledger balanced:" in out


def test_audit_needs_a_target(capsys):
    code = main(["audit"])
    assert code == 2
    assert "audit needs an experiment name" in capsys.readouterr().err


def test_audit_unknown_experiment_fails_cleanly(capsys):
    code = main(["audit", "no-such-experiment"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_audit_accepts_parameter_overrides(capsys):
    code = main(
        ["audit", "fault-blackout", "--duration", "1.0", "--seed", "3"]
    )
    assert code == 0
    assert "ledger balanced:" in capsys.readouterr().out


def test_audit_breakdown_lists_the_multihop_drop_states(capsys):
    # The routing-layer terminal states are first-class rows of the
    # breakdown table, not footnotes that appear only when non-zero.
    code = main(["audit", "multihop", "--duration", "0.5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no-route" in out
    assert "ttl-expired" in out
    assert "ledger balanced:" in out
