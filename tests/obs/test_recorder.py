"""FlightRecorder lifecycle: attach, shutdown-hook finalize, strictness."""

from __future__ import annotations

import pytest

from repro.errors import AuditError, SimulationError
from repro.obs import FlightRecorder
from repro.scenario import build
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer

from tests.obs.util import two_node_udp_spec


def test_attach_enables_the_audit_channel():
    sim, tracer = Simulator(), Tracer()
    assert tracer.audit is False
    FlightRecorder(sim, tracer).attach()
    assert tracer.audit is True


def test_attach_is_idempotent():
    sim, tracer = Simulator(), Tracer()
    recorder = FlightRecorder(sim, tracer)
    assert recorder.attach() is recorder.attach()
    ledger = recorder.ledger
    recorder.attach()
    assert recorder.ledger is ledger


def test_simulator_shutdown_finalizes_the_books():
    net = build(two_node_udp_spec())
    assert net.recorder is not None
    net.run(0.5)
    assert net.recorder.report is None
    net.sim.shutdown()
    report = net.recorder.report
    assert report is not None
    assert report.balanced
    assert report.opened == report.delivered + sum(report.drops.values())


def test_finalize_is_idempotent():
    net = build(two_node_udp_spec())
    net.run(0.5)
    first = net.recorder.finalize()
    assert net.recorder.finalize() is first
    net.sim.shutdown()  # the shutdown hook must not rebuild the report
    assert net.recorder.report is first


def test_strict_mode_raises_on_violation_immediately():
    sim, tracer = Simulator(), Tracer()
    FlightRecorder(sim, tracer).attach()
    with pytest.raises(AuditError, match="NAV"):
        tracer.emit(10_000, "mac.1", "nav", until_ns=5_000)


def test_audit_error_is_a_simulation_error():
    # The hardened runner's retry/fault machinery catches
    # SimulationError; audits must flow through the same spine.
    assert issubclass(AuditError, SimulationError)


def test_non_strict_mode_collects_violations():
    sim, tracer = Simulator(), Tracer()
    recorder = FlightRecorder(sim, tracer, strict=False).attach()
    tracer.emit(10_000, "mac.1", "nav", until_ns=5_000)
    report = recorder.finalize()
    assert len(report.violations) == 1
    assert "NavAuditor" in report.violations[0]


def test_strict_finalize_raises_on_unbalanced_ledger():
    sim, tracer = Simulator(), Tracer()
    recorder = FlightRecorder(sim, tracer).attach()
    # An SDU that opens and never closes: conservation fails.
    tracer.emit(
        0, "net.1", "sdu_open",
        sdu=0, origin=1, dst=2, protocol="udp", size_bytes=512,
    )
    tracer.emit(100, "net.2", "sdu_deliver", sdu=0, origin=1)
    tracer.emit(200, "net.2", "sdu_deliver", sdu=1, origin=1)  # unknown SDU
    with pytest.raises(AuditError, match="never opened"):
        recorder.finalize()


def test_report_drop_table_renders():
    net = build(two_node_udp_spec())
    net.run(0.5)
    net.sim.shutdown()
    table = net.recorder.report.drop_table()
    assert "Packet ledger" in table
    assert "delivered" in table
    for line in ("retry-limit", "queue-overflow", "sim-end-in-flight"):
        assert line in table


def test_report_summary_is_grep_able():
    net = build(two_node_udp_spec())
    net.run(0.5)
    net.sim.shutdown()
    assert net.recorder.report.summary().startswith("ledger balanced:")


def test_audit_off_recorder_still_finalizes():
    sim, tracer = Simulator(), Tracer()
    recorder = FlightRecorder(sim, tracer, audit=False).attach()
    assert tracer.audit is False
    report = recorder.finalize()
    assert report.opened == 0
    assert report.balanced
