"""Exporters: JSONL artefacts and the streaming digest agree byte-for-byte."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.obs.export import trace_digest_row
from repro.scenario import build

from tests.obs.util import run_audited, two_node_udp_spec


def _run_with_artifacts(tmp_path, **obs):
    spec = two_node_udp_spec(**obs)
    return run_audited(spec)


def test_trace_jsonl_is_written_and_parses(tmp_path):
    path = tmp_path / "trace.jsonl"
    net = _run_with_artifacts(tmp_path, trace_jsonl=str(path))
    assert net.recorder.report.artifacts["trace_jsonl"] == str(path)
    lines = path.read_text().splitlines()
    assert len(lines) == net.recorder.writer.records_written
    assert len(lines) > 0
    first = json.loads(lines[0])
    assert {"t_ns", "category", "event"} <= set(first)
    # The stream includes the audit channel's SDU lifecycle events.
    events = {json.loads(line)["event"] for line in lines}
    assert "sdu_open" in events
    assert "sdu_deliver" in events


def test_streaming_digest_equals_digest_of_the_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    net = _run_with_artifacts(tmp_path, trace_digest=True, trace_jsonl=str(path))
    streamed = net.recorder.digest.hexdigest()
    on_disk = hashlib.sha256(path.read_bytes()).hexdigest()
    assert streamed == on_disk
    assert net.recorder.report.trace_sha256 == streamed


def test_digest_is_deterministic_across_runs(tmp_path):
    digests = set()
    for _ in range(2):
        net = _run_with_artifacts(tmp_path, trace_digest=True)
        digests.add(net.recorder.digest.hexdigest())
    assert len(digests) == 1


def test_ledger_jsonl_is_sorted_and_complete(tmp_path):
    path = tmp_path / "ledger.jsonl"
    net = _run_with_artifacts(tmp_path, ledger_jsonl=str(path))
    report = net.recorder.report
    assert report.artifacts["ledger_jsonl"] == str(path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == report.opened
    keys = [(row["origin"], row["sdu"]) for row in rows]
    assert keys == sorted(keys)
    assert all(row["state"] in ("delivered", "dropped") for row in rows)


def test_trace_digest_row_extractor_reads_the_recorder(tmp_path):
    net = _run_with_artifacts(tmp_path, trace_digest=True)
    row = trace_digest_row(net)
    assert row["trace_sha256"] == net.recorder.digest.hexdigest()
    assert row["records"] == net.recorder.digest.records_hashed


def test_trace_digest_row_requires_a_digest():
    net = build(two_node_udp_spec())  # audit on, but no digest requested
    with pytest.raises(ValueError, match="trace_digest=True"):
        trace_digest_row(net)
