"""Shared scenario recipes for the observability tests.

Each helper returns a small deterministic :class:`ScenarioSpec` whose
run provably produces the packet fates its name says — the drop-reason
tests assert on exactly those fates, and the recorder/export tests just
need *some* audited traffic.
"""

from __future__ import annotations

from repro.scenario import (
    FaultSpec,
    FlowSpec,
    ObservabilitySpec,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
)

AUDITED = ObservabilitySpec(audit=True)


def two_node_udp_spec(duration_s: float = 0.5, **obs) -> ScenarioSpec:
    """A clean short-range CBR flow: mostly deliveries."""
    return ScenarioSpec(
        name="obs-two-node",
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512,
                         rate_bps=5e5),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=ObservabilitySpec(audit=True, **obs),
    )


def run_audited(spec):
    """Build, run to the spec horizon and shut down; returns the net."""
    net = build(spec)
    net.run(spec.duration_s)
    net.sim.shutdown()
    return net


def hidden_terminal_spec(duration_s: float = 2.0) -> ScenarioSpec:
    """Two senders that cannot hear each other, one common receiver.

    Their frames collide at the receiver, so retry-limit drops carry
    receiver-side rx-failure evidence -> ``rx-collision``.
    """
    return ScenarioSpec(
        name="obs-hidden-terminal",
        topology=TopologySpec.line(0.0, 100.0, 50.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=2, payload_bytes=512,
                         rate_bps=1e6, port=5001),
                FlowSpec(kind="cbr", src=1, dst=2, payload_bytes=512,
                         rate_bps=1e6, port=5002),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def out_of_range_spec(duration_s: float = 1.0) -> ScenarioSpec:
    """A link far beyond reception *and* detection range.

    The receiver never locks onto a frame, so there is no collision
    evidence and retry-limit drops stay ``retry-limit``.
    """
    return ScenarioSpec(
        name="obs-out-of-range",
        topology=TopologySpec.line(0.0, 200.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512,
                         rate_bps=2e5),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def tiny_queue_spec(duration_s: float = 1.0) -> ScenarioSpec:
    """Offered load far beyond the link rate into a 2-frame MAC queue."""
    return ScenarioSpec(
        name="obs-tiny-queue",
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        stack=StackSpec(mac_queue_frames=2),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=1000,
                         rate_bps=8e6),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def crash_spec(duration_s: float = 2.0) -> ScenarioSpec:
    """The sender crashes mid-flight with a full MAC queue."""
    return ScenarioSpec(
        name="obs-crash",
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512,
                         rate_bps=2e6),
            )
        ),
        faults=(
            FaultSpec(kind="node-crash", start_s=0.5, duration_s=1.0, node=0),
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def bulk_tcp_spec(duration_s: float = 1.0) -> ScenarioSpec:
    """A bulk TCP transfer over a clean short link."""
    return ScenarioSpec(
        name="obs-bulk-tcp",
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(flows=(FlowSpec(kind="bulk-tcp", src=0, dst=1),)),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def saturated_spec(duration_s: float = 0.5) -> ScenarioSpec:
    """Saturating CBR cut off mid-run: a backlog dies in flight."""
    return ScenarioSpec(
        name="obs-saturated",
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=1000,
                         rate_bps=8e6),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )


def no_route_spec(duration_s: float = 0.5) -> ScenarioSpec:
    """Strict shortest-path tables over a partitioned topology.

    The destination sits on an island the build-time BFS never reaches,
    so every SDU dies at its origin with a typed ``no-route`` drop —
    and the books must still balance exactly.
    """
    return ScenarioSpec(
        name="obs-no-route",
        topology=TopologySpec.line(0.0, 5000.0, fast_sigma_db=0.0),
        stack=StackSpec(routing="shortest-path"),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512,
                         rate_bps=2e5),
            )
        ),
        seed=1,
        duration_s=duration_s,
        observability=AUDITED,
    )
