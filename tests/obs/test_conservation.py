"""Packet conservation across the whole experiment registry.

Every registry experiment runs (at reduced scale) under a strict
:class:`AuditCollector`: each simulated network's ledger must balance
exactly and no invariant auditor may fire.  Strict mode means a leak
raises :class:`AuditError` mid-run — these tests double-check the
aggregated outcome on top of that.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.obs import audit_experiment

#: Experiments whose specs carry a 1 s warmup need duration > warmup;
#: the fault experiments clamp their own duration to >= 15 s simulated.
_DURATION_S = {name: 1.5 for name in EXPERIMENTS}
_DURATION_S["delay"] = 2.0


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_ledger_balances_on_registry_experiment(name):
    outcome = audit_experiment(
        name, duration_s=_DURATION_S[name], seed=1, probes=20
    )
    assert outcome.balanced
    assert outcome.violations == ()
    breakdown = outcome.drop_breakdown()
    opened = sum(report.opened for report in outcome.reports)
    assert sum(breakdown.values()) == opened
    # Drop reasons never go negative and never invent SDUs.
    assert all(count >= 0 for count in breakdown.values())


def test_fault_crash_experiment_accounts_for_crashed_sdus():
    """A node crash mid-flight lands in ``fault-crash`` — never leaks."""
    outcome = audit_experiment("fault-crash", duration_s=1.5, seed=1)
    assert outcome.balanced
    breakdown = outcome.drop_breakdown()
    assert breakdown["fault-crash"] > 0


def test_fault_blackout_experiment_balances_with_link_loss():
    outcome = audit_experiment("fault-blackout", duration_s=1.5, seed=1)
    assert outcome.balanced
    assert sum(outcome.drop_breakdown().values()) > 0


def test_audit_runs_every_network_the_experiment_builds():
    # figure2 builds one network per (transport, RTS) panel.
    outcome = audit_experiment("figure2", duration_s=1.5, seed=1)
    assert len(outcome.reports) == 4
    assert outcome.balanced


def test_render_contains_breakdown_table_and_verdict():
    outcome = audit_experiment("figure2", duration_s=1.5, seed=1)
    text = outcome.render()
    assert "Audit: figure2" in text
    assert "delivered" in text
    assert "ledger balanced:" in text
    assert "0 invariant violations" in text
