"""AuditCollector: session-scoped auditing of every network built."""

from __future__ import annotations

import pytest

from repro.obs import AuditCollector, active_collector
from repro.scenario import build

from tests.obs.util import two_node_udp_spec


def plain_spec():
    """A spec whose own observability section is off."""
    spec = two_node_udp_spec()
    assert spec.observability.audit  # util default
    from repro.scenario import ObservabilitySpec, ScenarioSpec

    return ScenarioSpec.from_dict(
        {**spec.to_dict(), "observability": ObservabilitySpec().to_dict()}
    )


def test_no_collector_and_no_spec_means_no_recorder():
    net = build(plain_spec())
    assert net.recorder is None
    assert net.tracer.audit is False


def test_collector_audits_networks_built_inside():
    with AuditCollector() as collector:
        net = build(plain_spec())
        assert net.recorder is not None
        net.run(0.25)
        net.sim.shutdown()
    assert len(collector.reports) == 1
    assert collector.reports[0].balanced


def test_collector_sweeps_unfinalized_recorders_on_exit():
    with AuditCollector() as collector:
        net = build(plain_spec())
        net.run(0.25)
        # No shutdown: the collector must finalize on exit.
    assert len(collector.reports) == 1
    assert collector.reports[0].balanced
    assert net.recorder.report is collector.reports[0]


def test_collectors_do_not_nest():
    with AuditCollector():
        with pytest.raises(RuntimeError, match="nest"):
            with AuditCollector():
                pass  # pragma: no cover
    assert active_collector() is None


def test_exiting_with_an_exception_does_not_mask_it():
    with pytest.raises(ValueError, match="boom"):
        with AuditCollector() as collector:
            build(plain_spec())
            raise ValueError("boom")
    # The original exception propagated; no audit ran on the way out.
    assert collector.reports == []
    assert active_collector() is None


def test_active_collector_is_cleared_after_exit():
    assert active_collector() is None
    with AuditCollector() as collector:
        assert active_collector() is collector
    assert active_collector() is None
