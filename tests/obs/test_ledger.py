"""Unit tests for the packet-conservation ledger's state machine.

These feed hand-built :class:`TraceRecord` streams straight into the
ledger — the integration recipes that make a *real* network produce each
drop reason live in ``test_drop_reasons.py``.
"""

from __future__ import annotations

import pytest

from repro.obs.ledger import DROP_REASONS, PacketLedger, SduEntry
from repro.sim.tracing import TraceRecord


def rec(time_ns, category, event, **fields):
    return TraceRecord(time_ns, category, event, fields)


def open_sdu(ledger, sdu=0, origin=1, dst=2, t=0, protocol="udp", port=None):
    fields = {
        "sdu": sdu,
        "origin": origin,
        "dst": dst,
        "protocol": protocol,
        "size_bytes": 512,
    }
    if port is not None:
        fields["src_port"] = port
    ledger.on_record(rec(t, f"net.{origin}", "sdu_open", **fields))


class TestLifecycle:
    def test_open_then_deliver_balances(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.on_record(rec(100, "net.2", "sdu_deliver", sdu=0, origin=1))
        ledger.finalize(end_ns=1000)
        assert ledger.opened == 1
        assert ledger.delivered == 1
        assert ledger.balanced
        assert ledger.problems() == []

    def test_open_without_terminal_becomes_sim_end_in_flight(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        assert ledger.in_flight == 1
        ledger.finalize(end_ns=1000)
        assert ledger.drops["sim-end-in-flight"] == 1
        assert ledger.balanced

    def test_every_drop_reason_is_a_known_bucket(self):
        ledger = PacketLedger()
        assert set(ledger.drops) == set(DROP_REASONS)

    def test_drop_closes_the_entry(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.on_record(
            rec(50, "mac.1", "sdu_drop", sdu=0, origin=1, reason="queue-overflow")
        )
        ledger.finalize(end_ns=1000)
        assert ledger.drops["queue-overflow"] == 1
        assert ledger.balanced

    def test_forward_counts_hops(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.on_record(rec(30, "net.3", "sdu_forward", sdu=0, origin=1))
        ledger.on_record(rec(60, "net.2", "sdu_deliver", sdu=0, origin=1))
        entry = ledger.entries[(1, 0)]
        assert entry.hops == 1
        assert entry.state == "delivered"

    def test_finalize_is_idempotent(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.finalize(end_ns=1000)
        ledger.finalize(end_ns=2000)
        assert ledger.drops["sim-end-in-flight"] == 1


class TestCollisionEvidence:
    """retry-limit upgrades to rx-collision only with receiver-side proof."""

    def _retry_drop(self, ledger):
        ledger.on_record(
            rec(900, "mac.1", "sdu_drop", sdu=0, origin=1, reason="retry-limit")
        )

    def test_rx_fail_at_intended_receiver_upgrades_to_collision(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, dst=2)
        ledger.on_record(rec(10, "mac.1", "sdu_enqueue", sdu=0, origin=1, dst=2))
        ledger.on_record(
            rec(20, "phy.n2", "sdu_rx_fail", sdu=0, origin=1, outcome="collision")
        )
        self._retry_drop(ledger)
        assert ledger.drops["rx-collision"] == 1
        assert ledger.drops["retry-limit"] == 0

    def test_no_rx_evidence_stays_retry_limit(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, dst=2)
        ledger.on_record(rec(10, "mac.1", "sdu_enqueue", sdu=0, origin=1, dst=2))
        self._retry_drop(ledger)
        assert ledger.drops["retry-limit"] == 1
        assert ledger.drops["rx-collision"] == 0

    def test_third_party_rx_fail_is_not_collision_evidence(self):
        # Station 9 overhears and fails the frame, but it was addressed
        # to station 2 — the overhearer's failure proves nothing.
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, dst=2)
        ledger.on_record(rec(10, "mac.1", "sdu_enqueue", sdu=0, origin=1, dst=2))
        ledger.on_record(
            rec(20, "phy.n9", "sdu_rx_fail", sdu=0, origin=1, outcome="sinr")
        )
        self._retry_drop(ledger)
        assert ledger.drops["retry-limit"] == 1

    def test_successful_hop_resets_the_evidence(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, dst=2)
        ledger.on_record(rec(10, "mac.1", "sdu_enqueue", sdu=0, origin=1, dst=2))
        ledger.on_record(
            rec(20, "phy.n2", "sdu_rx_fail", sdu=0, origin=1, outcome="collision")
        )
        ledger.on_record(rec(30, "mac.1", "sdu_tx_ok", sdu=0, origin=1))
        self._retry_drop(ledger)
        assert ledger.drops["retry-limit"] == 1

    def test_rx_fail_for_unknown_sdu_is_ignored(self):
        # Evidence events are non-strict: a frame still in the air for a
        # closed or never-seen SDU must not poison the balance.
        ledger = PacketLedger()
        ledger.on_record(
            rec(20, "phy.n2", "sdu_rx_fail", sdu=77, origin=1, outcome="sinr")
        )
        ledger.finalize(end_ns=100)
        assert ledger.unknown_events == 0
        assert ledger.balanced


class TestTcpAbortReclassification:
    def test_open_tcp_sdu_of_aborted_connection_becomes_tcp_abort(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, origin=1, protocol="tcp", port=5001)
        ledger.on_record(rec(500, "tcp.1:5001", "abort", reason="crash"))
        ledger.finalize(end_ns=1000)
        assert ledger.drops["tcp-abort"] == 1
        assert ledger.drops["sim-end-in-flight"] == 0

    def test_other_ports_are_not_swept_up(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, origin=1, protocol="tcp", port=5002)
        ledger.on_record(rec(500, "tcp.1:5001", "abort", reason="crash"))
        ledger.finalize(end_ns=1000)
        assert ledger.drops["tcp-abort"] == 0
        assert ledger.drops["sim-end-in-flight"] == 1

    def test_udp_never_reclassifies(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0, origin=1, protocol="udp", port=5001)
        ledger.on_record(rec(500, "tcp.1:5001", "abort", reason="crash"))
        ledger.finalize(end_ns=1000)
        assert ledger.drops["tcp-abort"] == 0
        assert ledger.drops["sim-end-in-flight"] == 1


class TestAnomalies:
    def test_drop_after_delivery_is_allowed(self):
        # The ACK-loss race: receiver delivered, but the sender never
        # heard the ACK and exhausted its retries.
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.on_record(rec(100, "net.2", "sdu_deliver", sdu=0, origin=1))
        ledger.on_record(
            rec(200, "mac.1", "sdu_drop", sdu=0, origin=1, reason="retry-limit")
        )
        ledger.finalize(end_ns=1000)
        assert ledger.anomalies == {"drop-after-delivery": 1}
        assert ledger.delivered == 1
        assert ledger.balanced

    def test_deliver_after_crash_drop_is_allowed(self):
        # The crash race: the frame was in the air when the sender's MAC
        # was flushed; the reception still completes.
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        ledger.on_record(
            rec(100, "mac.1", "sdu_drop", sdu=0, origin=1, reason="fault-crash")
        )
        ledger.on_record(rec(150, "net.2", "sdu_deliver", sdu=0, origin=1))
        ledger.finalize(end_ns=1000)
        assert ledger.anomalies == {"deliver-after-crash": 1}
        assert ledger.drops["fault-crash"] == 1
        assert ledger.balanced

    def test_double_drop_breaks_the_balance(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        for t in (100, 200):
            ledger.on_record(
                rec(t, "mac.1", "sdu_drop", sdu=0, origin=1, reason="retry-limit")
            )
        ledger.finalize(end_ns=1000)
        assert not ledger.balanced
        assert any("double-drop" in p for p in ledger.problems())

    def test_double_delivery_breaks_the_balance(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        for t in (100, 200):
            ledger.on_record(rec(t, "net.2", "sdu_deliver", sdu=0, origin=1))
        ledger.finalize(end_ns=1000)
        assert not ledger.balanced
        assert any("terminal-after-close" in p for p in ledger.problems())

    def test_duplicate_open_breaks_the_balance(self):
        ledger = PacketLedger()
        open_sdu(ledger, sdu=0)
        open_sdu(ledger, sdu=0)
        ledger.on_record(rec(100, "net.2", "sdu_deliver", sdu=0, origin=1))
        ledger.finalize(end_ns=1000)
        assert not ledger.balanced

    def test_terminal_for_unknown_sdu_breaks_the_balance(self):
        ledger = PacketLedger()
        ledger.on_record(rec(100, "net.2", "sdu_deliver", sdu=5, origin=1))
        ledger.finalize(end_ns=1000)
        assert ledger.unknown_events == 1
        assert not ledger.balanced


class TestEntryExport:
    def test_to_dict_is_json_primitive(self):
        entry = SduEntry(
            origin=1, sdu_id=3, dst=2, protocol="udp", size_bytes=512,
            opened_ns=10,
        )
        doc = entry.to_dict()
        assert doc["origin"] == 1
        assert doc["sdu"] == 3
        assert doc["state"] == "open"
        assert all(
            isinstance(v, (int, str, type(None))) for v in doc.values()
        )
