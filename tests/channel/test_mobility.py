"""Tests for station mobility."""

import pytest

from repro.channel.mobility import LinearMobility, walk_away
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


class FakeDevice:
    def __init__(self):
        self.position_m = (0.0, 0.0)


class TestLinearMobility:
    def test_moves_at_constant_velocity(self):
        sim = Simulator()
        device = FakeDevice()
        mobility = LinearMobility(sim, device, (2.0, -1.0), update_interval_s=0.1)
        mobility.start()
        sim.run(until_s=3.0)
        assert device.position_m[0] == pytest.approx(6.0, abs=0.3)
        assert device.position_m[1] == pytest.approx(-3.0, abs=0.2)

    def test_speed_property(self):
        sim = Simulator()
        mobility = LinearMobility(sim, FakeDevice(), (3.0, 4.0))
        assert mobility.speed_m_s == 5.0

    def test_stop_freezes_position(self):
        sim = Simulator()
        device = FakeDevice()
        mobility = LinearMobility(sim, device, (1.0, 0.0), update_interval_s=0.1)
        mobility.start()
        sim.schedule_s(1.0, mobility.stop)
        sim.run(until_s=5.0)
        assert device.position_m[0] == pytest.approx(1.0, abs=0.15)

    def test_velocity_change_mid_flight(self):
        sim = Simulator()
        device = FakeDevice()
        mobility = LinearMobility(sim, device, (1.0, 0.0), update_interval_s=0.05)
        mobility.start()
        sim.schedule_s(1.0, mobility.set_velocity, (0.0, 1.0))
        sim.run(until_s=2.0)
        assert device.position_m[0] == pytest.approx(1.0, abs=0.1)
        assert device.position_m[1] == pytest.approx(1.0, abs=0.1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearMobility(Simulator(), FakeDevice(), (1.0, 0.0), 0.0)

    def test_walk_away_starts_immediately(self):
        sim = Simulator()
        device = FakeDevice()
        walk_away(sim, device, speed_m_s=5.0)
        sim.run(until_s=2.0)
        assert device.position_m[0] == pytest.approx(10.0, abs=0.6)

    def test_walk_away_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            walk_away(Simulator(), FakeDevice(), speed_m_s=0.0)


class TestMobileLink:
    def test_walking_receiver_eventually_loses_the_link(self):
        from repro.experiments.mobility import measure_link_lifetime
        from repro.core.params import Rate

        result = measure_link_lifetime(
            Rate.MBPS_11, speed_m_s=20.0, horizon_s=10.0
        )
        # 11 Mbps range ~31 m from a 5 m start at 20 m/s: ~1.3 s.
        assert 0.5 < result.lifetime_s < 3.5
        assert 15.0 < result.break_distance_m < 60.0

    def test_ns2_preset_lives_much_longer(self):
        from repro.experiments.mobility import measure_link_lifetime
        from repro.core.params import Rate

        calibrated = measure_link_lifetime(
            Rate.MBPS_2, speed_m_s=20.0, horizon_s=20.0
        )
        ns2 = measure_link_lifetime(
            Rate.MBPS_2, speed_m_s=20.0, ns2_preset=True, horizon_s=20.0
        )
        assert ns2.lifetime_s > 2.0 * calibrated.lifetime_s
