"""Tests for placements and the analytic range table."""

import pytest

from repro.channel.placement import (
    chain_placement,
    figure6_placement,
    figure8_placement,
    figure10_placement,
    linear_positions,
    two_nodes,
)
from repro.channel.propagation import LogDistancePathLoss
from repro.channel.ranges import compute_range_table
from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.phy.radio import RadioParameters


class TestPlacements:
    def test_linear_positions_accumulate_gaps(self):
        assert linear_positions(25.0, 80.0, 25.0) == (
            (0.0, 0.0),
            (25.0, 0.0),
            (105.0, 0.0),
            (130.0, 0.0),
        )

    def test_invalid_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_positions(25.0, -1.0)

    def test_distance_helper(self):
        placement = chain_placement("x", 25.0, 80.0, 25.0)
        assert placement.distance(0, 3) == 130.0
        assert placement.distance(1, 2) == 80.0
        assert len(placement) == 4

    def test_paper_placements(self):
        assert figure6_placement().distance(0, 3) == 130.0
        assert figure8_placement().distance(1, 2) == 90.0
        assert figure10_placement().distance(1, 2) == 60.0
        assert len(two_nodes(15.0)) == 2


class TestRangeTable:
    def test_describe_mentions_every_rate(self):
        radio = RadioParameters.calibrated()
        table = compute_range_table(
            LogDistancePathLoss.calibrated(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        text = table.describe()
        for rate in Rate:
            assert str(rate) in text
        assert "carrier-sense" in text

    def test_extra_loss_shrinks_ranges(self):
        radio = RadioParameters.calibrated()
        propagation = LogDistancePathLoss.calibrated()
        clear = compute_range_table(
            propagation,
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        stormy = compute_range_table(
            propagation,
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
            extra_loss_db=3.0,
        )
        for rate in Rate:
            assert stormy.data_tx_range_m[rate] < clear.data_tx_range_m[rate]

    def test_control_ranges_restricted_to_basic_rates(self):
        radio = RadioParameters.calibrated()
        table = compute_range_table(
            LogDistancePathLoss.calibrated(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        assert set(table.control_tx_range_m) == {Rate.MBPS_1, Rate.MBPS_2}
