"""Tests for the path-loss models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.channel.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
)
from repro.errors import ConfigurationError


class TestFreeSpace:
    def test_loss_at_one_metre_2_4ghz(self):
        # 20 log10(4 pi / lambda) with lambda ~0.123 m: ~40.2 dB.
        model = FreeSpacePathLoss()
        assert model.path_loss_db(1.0) == pytest.approx(40.2, abs=0.3)

    def test_20_db_per_decade(self):
        model = FreeSpacePathLoss()
        assert model.path_loss_db(100.0) - model.path_loss_db(10.0) == pytest.approx(
            20.0
        )

    def test_zero_distance_clamped(self):
        model = FreeSpacePathLoss()
        assert math.isfinite(model.path_loss_db(0.0))

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss().path_loss_db(-1.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss(frequency_hz=0.0)


class TestLogDistance:
    def test_reference_loss_at_reference_distance(self):
        model = LogDistancePathLoss(exponent=3.5, reference_loss_db=40.2)
        assert model.path_loss_db(1.0) == pytest.approx(40.2)

    def test_35_db_per_decade_at_exponent_3_5(self):
        model = LogDistancePathLoss.calibrated()
        assert model.path_loss_db(100.0) - model.path_loss_db(10.0) == pytest.approx(
            35.0
        )

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.0)

    def test_invalid_reference_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_distance_m=0.0)

    @given(
        d1=st.floats(min_value=0.1, max_value=10_000.0),
        d2=st.floats(min_value=0.1, max_value=10_000.0),
    )
    def test_loss_monotone_in_distance(self, d1, d2):
        model = LogDistancePathLoss.calibrated()
        if d1 > d2:
            d1, d2 = d2, d1
        assert model.path_loss_db(d1) <= model.path_loss_db(d2)


class TestTwoRayGround:
    def test_matches_free_space_below_crossover(self):
        model = TwoRayGroundPathLoss()
        free = FreeSpacePathLoss()
        d = model.crossover_distance_m / 2
        assert model.path_loss_db(d) == pytest.approx(free.path_loss_db(d))

    def test_40_db_per_decade_beyond_crossover(self):
        model = TwoRayGroundPathLoss()
        d = model.crossover_distance_m * 2
        assert model.path_loss_db(10 * d) - model.path_loss_db(d) == pytest.approx(
            40.0
        )

    def test_continuous_at_crossover(self):
        model = TwoRayGroundPathLoss()
        d = model.crossover_distance_m
        below = model.path_loss_db(d * 0.999)
        above = model.path_loss_db(d * 1.001)
        assert below == pytest.approx(above, abs=0.5)

    def test_crossover_near_230m_for_1_5m_antennas(self):
        # 4 pi h_t h_r / lambda with h = 1.5 m at 2.437 GHz: ~230 m.
        model = TwoRayGroundPathLoss()
        assert model.crossover_distance_m == pytest.approx(230.0, abs=5.0)

    def test_invalid_heights_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoRayGroundPathLoss(tx_antenna_height_m=0.0)
