"""Tests for the slow weather process."""

import random

import pytest

from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.errors import ConfigurationError


class TestDayConditions:
    def test_bad_day_is_worse_than_good_day(self):
        assert DayConditions.bad_day().offset_db > DayConditions.good_day().offset_db

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            WeatherProcess(random.Random(0), DayConditions("x", 0.0, sigma_db=-1.0))

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ConfigurationError):
            WeatherProcess(
                random.Random(0),
                DayConditions("x", 0.0, correlation_time_s=0.0),
            )


class TestWeatherProcess:
    def test_calm_default_is_zero(self):
        process = WeatherProcess(random.Random(0))
        assert process.offset_db(0) == 0.0
        assert process.offset_db(10**12) == 0.0

    def test_day_offset_applied(self):
        process = WeatherProcess(
            random.Random(0), DayConditions("test", offset_db=2.5, sigma_db=0.0)
        )
        assert process.offset_db(0) == 2.5

    def test_drift_is_stationary(self):
        day = DayConditions("drifty", offset_db=0.0, sigma_db=2.0,
                            correlation_time_s=10.0)
        process = WeatherProcess(random.Random(3), day)
        step_ns = 5 * 10**9
        samples = [process.offset_db(i * step_ns) for i in range(4000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.4
        assert var**0.5 == pytest.approx(2.0, abs=0.4)

    def test_drift_is_correlated_over_short_gaps(self):
        day = DayConditions("slow", offset_db=0.0, sigma_db=2.0,
                            correlation_time_s=100.0)
        process = WeatherProcess(random.Random(3), day)
        a = process.offset_db(0)
        b = process.offset_db(10**6)  # 1 ms later: essentially unchanged
        assert b == pytest.approx(a, abs=0.2)

    def test_query_in_past_returns_held_state(self):
        day = DayConditions("x", offset_db=0.0, sigma_db=2.0)
        process = WeatherProcess(random.Random(3), day)
        now_value = process.offset_db(10**10)
        assert process.offset_db(5 * 10**9) == now_value

    def test_weather_shifts_channel_loss(self):
        bad = ChannelModel(
            fast_sigma_db=0.0,
            weather=WeatherProcess(
                random.Random(0), DayConditions("bad", 3.0, sigma_db=0.0)
            ),
        )
        clear = ChannelModel(fast_sigma_db=0.0)
        assert bad.loss_db((0, 0), (50, 0), "a", "b", 0) == pytest.approx(
            clear.loss_db((0, 0), (50, 0), "a", "b", 0) + 3.0
        )
