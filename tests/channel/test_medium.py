"""Tests for the broadcast medium."""

import math
import random

import pytest

from repro.channel.medium import GridIndex, Medium, Signal, resolve_medium
from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.errors import ConfigurationError, MediumError
from repro.sim.engine import Simulator


class FakeDevice:
    """Minimal medium device recording its callbacks."""

    def __init__(self, sim, position):
        self._sim = sim
        self.position_m = position
        self.events = []

    def on_signal_start(self, signal, rx_power_dbm):
        self.events.append(("start", self._sim.now_ns, signal.signal_id, rx_power_dbm))

    def on_signal_end(self, signal):
        self.events.append(("end", self._sim.now_ns, signal.signal_id))


def make_medium(*positions, floor=-110.0, sigma=0.0):
    sim = Simulator()
    channel = ChannelModel(fast_sigma_db=sigma, rng=random.Random(1))
    medium = Medium(sim, channel, delivery_floor_dbm=floor)
    devices = []
    for position in positions:
        device = FakeDevice(sim, (float(position), 0.0))
        medium.attach(device)
        devices.append(device)
    return sim, medium, devices


class TestTransmit:
    def test_signal_reaches_other_devices_not_sender(self):
        sim, medium, (tx, rx) = make_medium(0, 30)
        medium.transmit(tx, "frame", duration_ns=1_000_000, tx_power_dbm=15.0)
        sim.run()
        assert tx.events == []
        kinds = [event[0] for event in rx.events]
        assert kinds == ["start", "end"]

    def test_start_and_end_separated_by_duration(self):
        sim, medium, (tx, rx) = make_medium(0, 30)
        medium.transmit(tx, "frame", duration_ns=1_000_000, tx_power_dbm=15.0)
        sim.run()
        start = next(e for e in rx.events if e[0] == "start")
        end = next(e for e in rx.events if e[0] == "end")
        assert end[1] - start[1] == 1_000_000

    def test_propagation_delay_applied(self):
        sim, medium, (tx, rx) = make_medium(0, 300)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=40.0)
        sim.run()
        start = next(e for e in rx.events if e[0] == "start")
        # 300 m at light speed: ~1000 ns.
        assert start[1] == pytest.approx(1000, abs=10)

    def test_rx_power_follows_path_loss(self):
        sim, medium, (tx, near, far) = make_medium(0, 10, 100)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        near_power = next(e for e in near.events if e[0] == "start")[3]
        far_power = next(e for e in far.events if e[0] == "start")[3]
        assert near_power - far_power == pytest.approx(35.0, abs=0.1)

    def test_delivery_floor_suppresses_weak_signals(self):
        sim, medium, (tx, rx) = make_medium(0, 500, floor=-100.0)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert rx.events == []

    def test_multiple_receivers_each_get_the_signal(self):
        sim, medium, devices = make_medium(0, 20, 40, 60)
        medium.transmit(devices[0], "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        for rx in devices[1:]:
            assert [e[0] for e in rx.events] == ["start", "end"]

    def test_signal_ids_are_unique(self):
        sim, medium, (tx, rx) = make_medium(0, 20)
        a = medium.transmit(tx, "one", duration_ns=1000, tx_power_dbm=15.0)
        b = medium.transmit(tx, "two", duration_ns=1000, tx_power_dbm=15.0)
        assert a.signal_id != b.signal_id

    def test_signal_ids_are_per_medium(self):
        # Two live mediums in one process must not perturb each other's
        # id streams (worker determinism depends on it).
        _, medium_a, (tx_a, _) = make_medium(0, 20)
        _, medium_b, (tx_b, _) = make_medium(0, 20)
        first_a = medium_a.transmit(tx_a, "f", duration_ns=1000, tx_power_dbm=15.0)
        first_b = medium_b.transmit(tx_b, "f", duration_ns=1000, tx_power_dbm=15.0)
        second_a = medium_a.transmit(tx_a, "f", duration_ns=1000, tx_power_dbm=15.0)
        assert first_a.signal_id == 1
        assert first_b.signal_id == 1
        assert second_a.signal_id == 2

    def test_signal_duration_property(self):
        signal = Signal(None, "f", 15.0, 100, 400)
        assert signal.duration_ns == 300


class TestPairCache:
    def test_moving_a_device_recomputes_geometry(self):
        sim, medium, (tx, rx) = make_medium(0, 10)
        medium.transmit(tx, "near", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        near_power = next(e for e in rx.events if e[0] == "start")[3]
        rx.events.clear()
        rx.position_m = (100.0, 0.0)  # mobility replaces the tuple
        medium.transmit(tx, "far", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        far_power = next(e for e in rx.events if e[0] == "start")[3]
        # Calibrated log-distance model: 10 -> 100 m costs ~35 dB.
        assert near_power - far_power == pytest.approx(35.0, abs=0.1)

    def test_repeated_frames_reuse_cached_delay(self):
        sim, medium, (tx, rx) = make_medium(0, 300)
        for frame in ("a", "b"):
            medium.transmit(tx, frame, duration_ns=100, tx_power_dbm=40.0)
        sim.run()
        starts = [e[1] for e in rx.events if e[0] == "start"]
        # Both frames see the same ~1000 ns propagation delay.
        assert starts[0] == pytest.approx(1000, abs=10)
        assert starts[1] == starts[0]

    def test_static_shadowing_survives_cache_reuse(self):
        sim, medium, (tx, rx) = make_medium(0, 50, sigma=0.0)
        medium._channel.static_sigma_db = 3.0
        medium.transmit(tx, "a", duration_ns=1000, tx_power_dbm=15.0)
        medium.transmit(tx, "b", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        powers = [e[3] for e in rx.events if e[0] == "start"]
        # The static link draw happens once; both frames share it.
        assert powers[0] == powers[1]


class TestResolveMedium:
    def test_explicit_preference_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEDIUM", "dense")
        assert resolve_medium("spatial") == "spatial"

    def test_environment_selects_the_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEDIUM", "spatial")
        assert resolve_medium() == "spatial"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEDIUM", raising=False)
        assert resolve_medium() == "auto"

    def test_blank_value_means_auto(self):
        assert resolve_medium("  ") == "auto"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_medium("quadtree")

    def test_medium_reports_its_resolved_mode(self):
        sim = Simulator()
        channel = ChannelModel(fast_sigma_db=0.0, rng=random.Random(1))
        assert Medium(sim, channel, mode="spatial").mode == "spatial"


class TestGridIndex:
    def _random_grid(self, n=80, cell=50.0, seed=4):
        rng = random.Random(seed)
        positions = [
            (rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1200.0)) for _ in range(n)
        ]
        grid = GridIndex(cell)
        for index, position in enumerate(positions):
            grid.add(index, position)
        return grid, positions

    def test_near_is_a_superset_of_the_radius_in_ascending_order(self):
        grid, positions = self._random_grid()
        for radius in (60.0, 150.0, 400.0):
            for centre in positions[:10]:
                got = grid.near(centre, radius)
                assert got == sorted(got)
                inside = {
                    index
                    for index, position in enumerate(positions)
                    if math.dist(centre, position) <= radius
                }
                # Conservative query: may over-report, never under-report.
                assert inside <= set(got)

    def test_move_rebuckets_the_device(self):
        grid, positions = self._random_grid()
        grid.move(3, (2400.0, 2400.0))
        assert 3 not in grid.near(positions[3], 100.0)
        assert 3 in grid.near((2400.0, 2400.0), 1.0)

    def test_repair_catches_silent_moves(self):
        sim = Simulator()
        devices = [FakeDevice(sim, (float(index * 100), 0.0)) for index in range(5)]
        grid = GridIndex(50.0)
        for index, device in enumerate(devices):
            grid.add(index, device.position_m)
        devices[2].position_m = (1000.0, 0.0)  # behind the grid's back
        grid.repair(devices)
        assert 2 in grid.near((1000.0, 0.0), 10.0)
        assert 2 not in grid.near((200.0, 0.0), 10.0)

    def test_out_of_order_add_rejected(self):
        grid = GridIndex(10.0)
        with pytest.raises(MediumError):
            grid.add(1, (0.0, 0.0))

    def test_non_positive_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            GridIndex(0.0)


def _scripted_run(mode, fast_sigma_db=0.0, weather=False, moves=False):
    """One fixed transmit/move script; returns the medium and all events.

    Forty stations on a 2.5 km square — far wider than the ~300 m cull
    radius at 15 dBm — so the spatial path genuinely skips most devices.
    """
    sim = Simulator()
    weather_process = None
    if weather:
        weather_process = WeatherProcess(
            random.Random(5),
            DayConditions(
                name="test", offset_db=1.0, sigma_db=2.0, correlation_time_s=0.5
            ),
        )
    channel = ChannelModel(
        fast_sigma_db=fast_sigma_db, rng=random.Random(2), weather=weather_process
    )
    medium = Medium(sim, channel, mode=mode)
    layout = random.Random(9)
    devices = []
    for _ in range(40):
        device = FakeDevice(
            sim, (layout.uniform(0.0, 2500.0), layout.uniform(0.0, 2500.0))
        )
        medium.attach(device)
        devices.append(device)
    mover = devices[7]
    for round_index in range(6):
        for tx in (devices[0], devices[19], devices[39]):
            medium.transmit(
                tx, f"frame-{round_index}", duration_ns=1000, tx_power_dbm=15.0
            )
            sim.run()
        if moves:
            x, y = mover.position_m
            mover.position_m = (x + 400.0, y)
            medium.notify_moved(mover)
    return medium, [device.events for device in devices]


class TestSpatialIdentity:
    """The tentpole contract: spatial emits the dense event stream, bit for bit."""

    @pytest.mark.parametrize("fast_sigma_db", [0.0, 2.5])
    @pytest.mark.parametrize("weather", [False, True])
    @pytest.mark.parametrize("moves", [False, True])
    def test_spatial_matches_dense(self, fast_sigma_db, weather, moves):
        _, dense = _scripted_run("dense", fast_sigma_db, weather, moves)
        _, spatial = _scripted_run("spatial", fast_sigma_db, weather, moves)
        assert dense == spatial
        # The script is not vacuous: somebody actually heard something.
        assert any(events for events in dense)

    def test_the_script_actually_culls(self):
        dense_medium, _ = _scripted_run("dense")
        spatial_medium, _ = _scripted_run("spatial")
        assert spatial_medium._grid is not None
        # Dense touches every directed pair; spatial only candidates.
        assert len(spatial_medium._pair_cache) < len(dense_medium._pair_cache)


class TestModeDispatch:
    def _wide_medium(self, n, mode, static_sigma=0.0):
        sim = Simulator()
        channel = ChannelModel(
            fast_sigma_db=0.0, static_sigma_db=static_sigma, rng=random.Random(1)
        )
        medium = Medium(sim, channel, mode=mode)
        devices = []
        for index in range(n):
            device = FakeDevice(sim, (index * 40.0, 0.0))
            medium.attach(device)
            devices.append(device)
        return sim, medium, devices

    def test_auto_stays_dense_below_the_cutoff(self):
        sim, medium, devices = self._wide_medium(5, mode="auto")
        medium.transmit(devices[0], "f", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert medium._grid is None

    def test_auto_engages_the_grid_at_scale(self):
        sim, medium, devices = self._wide_medium(32, mode="auto")
        medium.transmit(devices[0], "f", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert medium._grid is not None

    def test_loss_hooks_pin_the_dense_path(self):
        sim, medium, devices = self._wide_medium(32, mode="spatial")
        medium.add_loss_hook(lambda source, receiver, time_ns: 0.0)
        medium.transmit(devices[0], "f", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert medium._grid is None

    def test_static_shadowing_pins_the_dense_path(self):
        sim, medium, devices = self._wide_medium(32, mode="spatial", static_sigma=3.0)
        medium.transmit(devices[0], "f", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert medium._grid is None

    def test_cull_radius_exists_for_realistic_power(self):
        _, medium, _ = self._wide_medium(2, mode="spatial")
        radius = medium.cull_radius_m(15.0)
        assert radius is not None
        assert 100.0 < radius < 1000.0


class TestValidation:
    def test_double_attach_rejected(self):
        sim, medium, (device,) = make_medium(0)
        with pytest.raises(MediumError):
            medium.attach(device)

    def test_unattached_transmitter_rejected(self):
        sim, medium, _ = make_medium(0)
        stranger = FakeDevice(sim, (5.0, 0.0))
        with pytest.raises(MediumError):
            medium.transmit(stranger, "frame", duration_ns=1000, tx_power_dbm=15.0)

    def test_non_positive_duration_rejected(self):
        sim, medium, (tx, _) = make_medium(0, 10)
        with pytest.raises(MediumError):
            medium.transmit(tx, "frame", duration_ns=0, tx_power_dbm=15.0)
