"""Tests for the broadcast medium."""

import random

import pytest

from repro.channel.medium import Medium, Signal
from repro.channel.shadowing import ChannelModel
from repro.errors import MediumError
from repro.sim.engine import Simulator


class FakeDevice:
    """Minimal medium device recording its callbacks."""

    def __init__(self, sim, position):
        self._sim = sim
        self.position_m = position
        self.events = []

    def on_signal_start(self, signal, rx_power_dbm):
        self.events.append(("start", self._sim.now_ns, signal.signal_id, rx_power_dbm))

    def on_signal_end(self, signal):
        self.events.append(("end", self._sim.now_ns, signal.signal_id))


def make_medium(*positions, floor=-110.0, sigma=0.0):
    sim = Simulator()
    channel = ChannelModel(fast_sigma_db=sigma, rng=random.Random(1))
    medium = Medium(sim, channel, delivery_floor_dbm=floor)
    devices = []
    for position in positions:
        device = FakeDevice(sim, (float(position), 0.0))
        medium.attach(device)
        devices.append(device)
    return sim, medium, devices


class TestTransmit:
    def test_signal_reaches_other_devices_not_sender(self):
        sim, medium, (tx, rx) = make_medium(0, 30)
        medium.transmit(tx, "frame", duration_ns=1_000_000, tx_power_dbm=15.0)
        sim.run()
        assert tx.events == []
        kinds = [event[0] for event in rx.events]
        assert kinds == ["start", "end"]

    def test_start_and_end_separated_by_duration(self):
        sim, medium, (tx, rx) = make_medium(0, 30)
        medium.transmit(tx, "frame", duration_ns=1_000_000, tx_power_dbm=15.0)
        sim.run()
        start = next(e for e in rx.events if e[0] == "start")
        end = next(e for e in rx.events if e[0] == "end")
        assert end[1] - start[1] == 1_000_000

    def test_propagation_delay_applied(self):
        sim, medium, (tx, rx) = make_medium(0, 300)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=40.0)
        sim.run()
        start = next(e for e in rx.events if e[0] == "start")
        # 300 m at light speed: ~1000 ns.
        assert start[1] == pytest.approx(1000, abs=10)

    def test_rx_power_follows_path_loss(self):
        sim, medium, (tx, near, far) = make_medium(0, 10, 100)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        near_power = next(e for e in near.events if e[0] == "start")[3]
        far_power = next(e for e in far.events if e[0] == "start")[3]
        assert near_power - far_power == pytest.approx(35.0, abs=0.1)

    def test_delivery_floor_suppresses_weak_signals(self):
        sim, medium, (tx, rx) = make_medium(0, 500, floor=-100.0)
        medium.transmit(tx, "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert rx.events == []

    def test_multiple_receivers_each_get_the_signal(self):
        sim, medium, devices = make_medium(0, 20, 40, 60)
        medium.transmit(devices[0], "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        for rx in devices[1:]:
            assert [e[0] for e in rx.events] == ["start", "end"]

    def test_signal_ids_are_unique(self):
        sim, medium, (tx, rx) = make_medium(0, 20)
        a = medium.transmit(tx, "one", duration_ns=1000, tx_power_dbm=15.0)
        b = medium.transmit(tx, "two", duration_ns=1000, tx_power_dbm=15.0)
        assert a.signal_id != b.signal_id

    def test_signal_ids_are_per_medium(self):
        # Two live mediums in one process must not perturb each other's
        # id streams (worker determinism depends on it).
        _, medium_a, (tx_a, _) = make_medium(0, 20)
        _, medium_b, (tx_b, _) = make_medium(0, 20)
        first_a = medium_a.transmit(tx_a, "f", duration_ns=1000, tx_power_dbm=15.0)
        first_b = medium_b.transmit(tx_b, "f", duration_ns=1000, tx_power_dbm=15.0)
        second_a = medium_a.transmit(tx_a, "f", duration_ns=1000, tx_power_dbm=15.0)
        assert first_a.signal_id == 1
        assert first_b.signal_id == 1
        assert second_a.signal_id == 2

    def test_signal_duration_property(self):
        signal = Signal(None, "f", 15.0, 100, 400)
        assert signal.duration_ns == 300


class TestPairCache:
    def test_moving_a_device_recomputes_geometry(self):
        sim, medium, (tx, rx) = make_medium(0, 10)
        medium.transmit(tx, "near", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        near_power = next(e for e in rx.events if e[0] == "start")[3]
        rx.events.clear()
        rx.position_m = (100.0, 0.0)  # mobility replaces the tuple
        medium.transmit(tx, "far", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        far_power = next(e for e in rx.events if e[0] == "start")[3]
        # Calibrated log-distance model: 10 -> 100 m costs ~35 dB.
        assert near_power - far_power == pytest.approx(35.0, abs=0.1)

    def test_repeated_frames_reuse_cached_delay(self):
        sim, medium, (tx, rx) = make_medium(0, 300)
        for frame in ("a", "b"):
            medium.transmit(tx, frame, duration_ns=100, tx_power_dbm=40.0)
        sim.run()
        starts = [e[1] for e in rx.events if e[0] == "start"]
        # Both frames see the same ~1000 ns propagation delay.
        assert starts[0] == pytest.approx(1000, abs=10)
        assert starts[1] == starts[0]

    def test_static_shadowing_survives_cache_reuse(self):
        sim, medium, (tx, rx) = make_medium(0, 50, sigma=0.0)
        medium._channel.static_sigma_db = 3.0
        medium.transmit(tx, "a", duration_ns=1000, tx_power_dbm=15.0)
        medium.transmit(tx, "b", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        powers = [e[3] for e in rx.events if e[0] == "start"]
        # The static link draw happens once; both frames share it.
        assert powers[0] == powers[1]


class TestValidation:
    def test_double_attach_rejected(self):
        sim, medium, (device,) = make_medium(0)
        with pytest.raises(MediumError):
            medium.attach(device)

    def test_unattached_transmitter_rejected(self):
        sim, medium, _ = make_medium(0)
        stranger = FakeDevice(sim, (5.0, 0.0))
        with pytest.raises(MediumError):
            medium.transmit(stranger, "frame", duration_ns=1000, tx_power_dbm=15.0)

    def test_non_positive_duration_rejected(self):
        sim, medium, (tx, _) = make_medium(0, 10)
        with pytest.raises(MediumError):
            medium.transmit(tx, "frame", duration_ns=0, tx_power_dbm=15.0)
