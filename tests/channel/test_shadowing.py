"""Tests for the composite channel model."""

import random

import pytest

from repro.channel.shadowing import ChannelModel, distance_m
from repro.errors import ConfigurationError


class TestDistance:
    def test_euclidean(self):
        assert distance_m((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_zero_for_same_point(self):
        assert distance_m((2.0, 2.0), (2.0, 2.0)) == 0.0


class TestChannelModel:
    def test_deterministic_without_shadowing(self):
        model = ChannelModel(fast_sigma_db=0.0)
        losses = {
            model.loss_db((0, 0), (50, 0), "a", "b", t) for t in (0, 10, 1000)
        }
        assert len(losses) == 1

    def test_mean_loss_matches_propagation(self):
        model = ChannelModel(fast_sigma_db=0.0)
        assert model.loss_db((0, 0), (50, 0), "a", "b", 0) == pytest.approx(
            model.mean_loss_db(50.0)
        )

    def test_fast_shadowing_varies_per_call(self):
        model = ChannelModel(fast_sigma_db=3.0, rng=random.Random(1))
        losses = {model.loss_db((0, 0), (50, 0), "a", "b", 0) for _ in range(10)}
        assert len(losses) == 10

    def test_fast_shadowing_has_requested_spread(self):
        model = ChannelModel(fast_sigma_db=3.0, rng=random.Random(1))
        samples = [model.loss_db((0, 0), (50, 0), "a", "b", 0) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(model.mean_loss_db(50.0), abs=0.2)
        assert var**0.5 == pytest.approx(3.0, abs=0.2)

    def test_static_shadowing_is_stable_per_link(self):
        model = ChannelModel(
            fast_sigma_db=0.0, static_sigma_db=4.0, rng=random.Random(1)
        )
        first = model.loss_db((0, 0), (50, 0), "a", "b", 0)
        second = model.loss_db((0, 0), (50, 0), "a", "b", 99)
        assert first == second

    def test_asymmetric_links_differ(self):
        model = ChannelModel(
            fast_sigma_db=0.0,
            static_sigma_db=4.0,
            asymmetric=True,
            rng=random.Random(1),
        )
        forward = model.loss_db((0, 0), (50, 0), "a", "b", 0)
        reverse = model.loss_db((50, 0), (0, 0), "b", "a", 0)
        assert forward != reverse

    def test_symmetric_links_match(self):
        model = ChannelModel(
            fast_sigma_db=0.0,
            static_sigma_db=4.0,
            asymmetric=False,
            rng=random.Random(1),
        )
        forward = model.loss_db((0, 0), (50, 0), "a", "b", 0)
        reverse = model.loss_db((50, 0), (0, 0), "b", "a", 0)
        assert forward == reverse

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelModel(fast_sigma_db=-1.0)
