"""Shared machinery of the analytical-conformance harness.

The pinned validation grid (``grid.json``) names saturation points —
``stations x CWmin x retry-limit`` — and a per-point tolerance band.
For each point :func:`run_point` builds the same ring-of-contenders
scenario the ``mac-surface`` experiment sweeps, runs it, computes the
closed-form prediction from :mod:`repro.analysis.analytic` (off the
identical ``StackSpec.dot11_config()`` constants), and returns a
record with the relative delta plus enough MAC-level diagnostics
(transmissions, timeouts, empirical collision probability, drop
taxonomy) to debug a violation without re-running anything.

``python -m tests.conformance.report_grid`` renders the whole grid as
a JSON report — the artifact the CI ``conformance`` job uploads.

Regenerating the grid: edit ``GRID_POINTS`` / ``TOLERANCES`` below and
run ``python -m tests.conformance.report_grid --write-grid`` to rewrite
``grid.json`` (then commit both, and say why the bands moved).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

GRID_PATH = Path(__file__).with_name("grid.json")

#: The pinned cross product: every (stations, CWmin, retry) combination.
GRID_STATIONS: tuple[int, ...] = (1, 2, 5, 8)
GRID_CW_MIN: tuple[int, ...] = (32, 128)
GRID_RETRY: tuple[int, ...] = (1, 7)

#: Tolerance bands (relative |sim/model - 1|).  A single contender has
#: no collisions — sim and model share the exact slot arithmetic, so
#: the band is tight.  Contending points inherit Bianchi's decoupling
#: approximation plus finite-run noise; observed deltas sit under 3%,
#: the band leaves a 2x margin.
TOLERANCE_SINGLE = 0.015
TOLERANCE_CONTENDED = 0.06

#: Shared scenario settings of every grid point.
GRID_DEFAULTS: dict[str, Any] = {
    "duration_s": 1.5,
    "warmup_s": 0.25,
    "seed": 1,
    "payload_bytes": 1024,
    "rate_mbps": 11.0,
}


def grid_document() -> dict[str, Any]:
    """The canonical ``grid.json`` content for the constants above."""
    points = [
        {
            "stations": stations,
            "cw_min": cw_min,
            "retry": retry,
            "tolerance": (
                TOLERANCE_SINGLE if stations == 1 else TOLERANCE_CONTENDED
            ),
        }
        for stations in GRID_STATIONS
        for cw_min in GRID_CW_MIN
        for retry in GRID_RETRY
    ]
    return {"defaults": dict(GRID_DEFAULTS), "points": points}


def load_grid() -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """(defaults, points) from the pinned ``grid.json``."""
    data = json.loads(GRID_PATH.read_text())
    return data["defaults"], data["points"]


def point_spec(defaults: Mapping[str, Any], point: Mapping[str, Any]):
    """The :class:`ScenarioSpec` for one grid point."""
    from repro.experiments.mac_surface import saturation_spec
    from repro.scenario import MacParamsSpec

    return saturation_spec(
        stations=point["stations"],
        duration_s=defaults["duration_s"],
        warmup_s=defaults["warmup_s"],
        seed=defaults["seed"],
        payload_bytes=defaults["payload_bytes"],
        rate_mbps=defaults["rate_mbps"],
        mac=MacParamsSpec(
            cw_min_slots=point["cw_min"],
            short_retry_limit=point["retry"],
        ),
    )


def run_point(
    defaults: Mapping[str, Any], point: Mapping[str, Any]
) -> dict[str, Any]:
    """Simulate one grid point and compare it with the model."""
    from repro.analysis.analytic import predict_scenario
    from repro.scenario import build
    from repro.units import s_to_ns

    spec = point_spec(defaults, point)
    prediction = predict_scenario(spec)
    net = build(spec)
    net.sim.run(until_ns=s_to_ns(spec.duration_s))
    sim_bps = sum(
        flow.sink.throughput_bps(spec.duration_s) for flow in net.flows
    )
    data_tx = sum(node.mac.counters.data_tx for node in net.nodes)
    timeouts = sum(node.mac.counters.ack_timeouts for node in net.nodes)
    tx_drops = sum(node.mac.counters.tx_drops for node in net.nodes)
    delta = sim_bps / prediction.throughput_bps - 1.0
    return {
        "stations": point["stations"],
        "cw_min": point["cw_min"],
        "retry": point["retry"],
        "tolerance": point["tolerance"],
        "sim_bps": sim_bps,
        "model_bps": prediction.throughput_bps,
        "delta": delta,
        "ok": abs(delta) <= point["tolerance"],
        "diagnostics": {
            "model_tau": prediction.tau,
            "model_p": prediction.collision_probability,
            "model_expected_slot_us": prediction.expected_slot_us,
            "model_t_success_us": prediction.t_success_us,
            "model_t_collision_us": prediction.t_collision_us,
            "sim_data_tx": data_tx,
            "sim_ack_timeouts": timeouts,
            "sim_retry_drops": tx_drops,
            "sim_p": timeouts / data_tx if data_tx else 0.0,
            "ledger_drops": dict(net.recorder.ledger.drops),
        },
    }


def describe(record: Mapping[str, Any]) -> str:
    """Human-readable per-point diagnostics (assertion message)."""
    diag = record["diagnostics"]
    return (
        f"n={record['stations']} CWmin={record['cw_min']} "
        f"retry={record['retry']}: sim {record['sim_bps'] / 1e6:.3f} Mbps "
        f"vs model {record['model_bps'] / 1e6:.3f} Mbps "
        f"(delta {record['delta'] * 100:+.2f}%, "
        f"tolerance ±{record['tolerance'] * 100:.1f}%)\n"
        f"  model: tau={diag['model_tau']:.4f} p={diag['model_p']:.4f} "
        f"E[slot]={diag['model_expected_slot_us']:.1f}us "
        f"Ts={diag['model_t_success_us']:.1f}us "
        f"Tc={diag['model_t_collision_us']:.1f}us\n"
        f"  sim: tx={diag['sim_data_tx']} "
        f"timeouts={diag['sim_ack_timeouts']} "
        f"retry_drops={diag['sim_retry_drops']} "
        f"p={diag['sim_p']:.4f} drops={diag['ledger_drops']}"
    )
