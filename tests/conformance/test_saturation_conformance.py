"""Model-vs-sim conformance on the pinned validation grid.

Each grid point asserts the simulated saturation throughput agrees
with the closed-form DCF prediction within the point's stated
tolerance band, with full per-point diagnostics on failure.  This is
a CI-enforced invariant: a MAC-layer regression that shifts
throughput by more than the band fails here even if every
behavioural unit test still passes.
"""

from __future__ import annotations

import pytest

from tests.conformance.harness import (
    describe,
    grid_document,
    load_grid,
    run_point,
)

DEFAULTS, POINTS = load_grid()


def _point_id(point: dict) -> str:
    return f"n{point['stations']}-cw{point['cw_min']}-r{point['retry']}"


def test_grid_file_matches_harness_constants():
    """grid.json is generated, not hand-edited: it must round-trip."""
    document = grid_document()
    assert DEFAULTS == document["defaults"]
    assert POINTS == document["points"], (
        "grid.json is out of date; regenerate with "
        "`python -m tests.conformance.report_grid --write-grid`"
    )


def test_grid_is_a_full_cross_product():
    combos = {(p["stations"], p["cw_min"], p["retry"]) for p in POINTS}
    stations = {p["stations"] for p in POINTS}
    cw_mins = {p["cw_min"] for p in POINTS}
    retries = {p["retry"] for p in POINTS}
    assert len(combos) == len(POINTS)
    assert combos == {
        (n, w, r) for n in stations for w in cw_mins for r in retries
    }


def test_tolerance_bands_are_meaningful():
    """The bands must stay falsifiable, not drift into vacuity."""
    for point in POINTS:
        assert 0.0 < point["tolerance"] <= 0.10


@pytest.mark.parametrize("point", POINTS, ids=_point_id)
def test_sim_matches_analytic_model(point):
    record = run_point(DEFAULTS, point)
    assert record["ok"], (
        "simulated saturation throughput outside the analytic tolerance "
        "band\n" + describe(record)
    )
