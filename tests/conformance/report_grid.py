"""Render the analytical-validation grid as a JSON report.

Run from the repo root::

    PYTHONPATH=src python -m tests.conformance.report_grid > deltas.json

CI's ``conformance`` job uploads the output as the per-point
model-vs-sim artifact.  ``--write-grid`` instead rewrites ``grid.json``
from the constants in :mod:`tests.conformance.harness` (use after an
intentional grid or tolerance change, and commit the result).
"""

from __future__ import annotations

import json
import sys

from tests.conformance.harness import (
    GRID_PATH,
    grid_document,
    load_grid,
    run_point,
)


def main(argv: list[str]) -> int:
    if "--write-grid" in argv:
        GRID_PATH.write_text(
            json.dumps(grid_document(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {GRID_PATH}", file=sys.stderr)
        return 0
    defaults, points = load_grid()
    records = [run_point(defaults, point) for point in points]
    report = {
        "defaults": defaults,
        "points": records,
        "worst_abs_delta": max(abs(r["delta"]) for r in records),
        "failures": sum(1 for r in records if not r["ok"]),
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0 if report["failures"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
