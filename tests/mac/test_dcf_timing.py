"""Exact MAC timing verified from trace timestamps.

The DCF's value as a substrate rests on its timing discipline; these
tests pin the microsecond-level behaviour: DIFS before an immediate
transmission, SIFS between data and ACK, backoff in whole slots, EIFS
after an erroneous reception.
"""

import pytest

from repro.core.params import MacParameters, Rate
from tests.util import build_mac_network


class Recorder:
    """Collects (time_ns, category.event) pairs from the tracer."""

    def __init__(self, network, prefix=""):
        self.entries = []
        network.tracer.subscribe(self._on_record, prefix=prefix)

    def _on_record(self, record):
        self.entries.append((record.time_ns, f"{record.category}.{record.event}"))

    def times(self, key):
        return [t for t, k in self.entries if k == key]


class TestDcfTiming:
    def test_immediate_access_waits_exactly_difs(self):
        net = build_mac_network([0, 20])
        recorder = Recorder(net)
        net[0].mac.enqueue("x", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        tx_start = recorder.times("phy.s1.tx_start")[0]
        # Enqueue at t=0 on an idle medium: TX begins DIFS (50 us) later.
        assert tx_start == 50_000

    def test_ack_follows_data_after_sifs(self):
        net = build_mac_network([0, 20], data_rate=Rate.MBPS_2)
        recorder = Recorder(net)
        net[0].mac.enqueue("x", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        data_start = recorder.times("phy.s1.tx_start")[0]
        ack_start = recorder.times("phy.s2.tx_start")[0]
        # Data airtime at 2 Mbps: 192 + 136 + 2160 us; propagation ~67 ns
        # each way; ACK starts SIFS (10 us) after the data ends at S2.
        from repro.core.airtime import AirtimeCalculator

        data_us = AirtimeCalculator().data_frame_us(540, Rate.MBPS_2)
        expected = data_start + round(data_us * 1000) + 10_000
        assert ack_start == pytest.approx(expected, abs=200)  # 2x propagation

    def test_post_backoff_is_whole_slots_after_difs(self):
        net = build_mac_network([0, 20], data_rate=Rate.MBPS_2)
        recorder = Recorder(net)
        net[0].mac.enqueue("a", dst=2, msdu_bytes=540)
        net[0].mac.enqueue("b", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.2)
        ack_end_approx = None
        # Second data TX must start at (ack end + DIFS + k * slot).
        s1_tx = recorder.times("phy.s1.tx_start")
        s2_tx_end = recorder.times("phy.s2.tx_end")
        assert len(s1_tx) == 2
        first_ack_end = s2_tx_end[0]
        gap_ns = s1_tx[1] - first_ack_end
        mac = MacParameters()
        after_difs = gap_ns - round(mac.difs_us * 1000)
        assert after_difs >= 0
        slot_ns = round(mac.slot_time_us * 1000)
        # Within propagation slack of a whole number of slots.
        remainder = after_difs % slot_ns
        assert min(remainder, slot_ns - remainder) < 500
        # And within the initial contention window.
        assert after_difs // slot_ns <= mac.cw_min_slots

    def test_rts_cts_sifs_chain(self):
        net = build_mac_network([0, 20], data_rate=Rate.MBPS_2, rts_enabled=True)
        recorder = Recorder(net)
        net[0].mac.enqueue("x", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        s1_starts = recorder.times("phy.s1.tx_start")  # RTS, DATA
        s2_starts = recorder.times("phy.s2.tx_start")  # CTS, ACK
        assert len(s1_starts) == 2
        assert len(s2_starts) == 2
        from repro.core.airtime import AirtimeCalculator

        airtime = AirtimeCalculator()
        rts_ns = round(airtime.rts_us() * 1000)
        cts_ns = round(airtime.cts_us() * 1000)
        # CTS starts SIFS after the RTS ends (+|prop| slack).
        assert s2_starts[0] == pytest.approx(
            s1_starts[0] + rts_ns + 10_000, abs=200
        )
        # DATA starts SIFS after the CTS ends.
        assert s1_starts[1] == pytest.approx(
            s2_starts[0] + cts_ns + 10_000, abs=200
        )

    def test_eifs_after_erroneous_reception(self):
        from repro.core.params import PlcpParameters

        # s2 (at 60 m from s3) sends an 11 Mbps frame: s3 locks the PLCP
        # but cannot decode the payload (range 31 m) -> erroneous
        # reception -> s3's next access must wait EIFS, not DIFS.
        net = build_mac_network([0, 60, 120], data_rate=Rate.MBPS_11)
        recorder = Recorder(net)
        net[1].mac.enqueue("to-s1", dst=1, msdu_bytes=540)
        # Enqueue on s3 while s2's frame is still in the air (it flies
        # from ~50 us to ~771 us).
        net.sim.schedule(400_000, net[2].mac.enqueue, "after-error", 2, 540)
        net.sim.run(until_s=0.1)
        assert net[2].mac.counters.rx_errors >= 1
        error_end = recorder.times("phy.s3.rx_end")[0]
        tx_start = recorder.times("phy.s3.tx_start")[0]
        eifs_ns = round(
            MacParameters().eifs_us(PlcpParameters.long()) * 1000
        )
        # Arrival on a busy medium draws a backoff, so the wait is
        # EIFS (364 us) plus a whole number of slots — in particular it
        # is far above anything DIFS (50 us) could produce.
        wait_ns = tx_start - error_end
        assert wait_ns >= eifs_ns - 500
        slot_ns = round(MacParameters().slot_time_us * 1000)
        slots = (wait_ns - eifs_ns) / slot_ns
        assert abs(slots - round(slots)) < 0.05
        assert 0 <= round(slots) < MacParameters().cw_min_slots
