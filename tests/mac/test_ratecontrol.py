"""Tests for rate control (fixed and ARF)."""

import pytest

from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.mac.ratecontrol import ArfConfig, ArfRateController, FixedRate


class TestFixedRate:
    def test_always_the_same_rate(self):
        controller = FixedRate(Rate.MBPS_5_5)
        assert controller.data_rate(1) is Rate.MBPS_5_5
        controller.on_failure(1)
        controller.on_success(1)
        assert controller.data_rate(1) is Rate.MBPS_5_5


class TestArfUnit:
    def test_starts_at_initial_rate(self):
        arf = ArfRateController(ArfConfig(initial_rate=Rate.MBPS_2))
        assert arf.data_rate(7) is Rate.MBPS_2

    def test_steps_up_after_success_run(self):
        arf = ArfRateController(ArfConfig(success_threshold=3))
        for _ in range(3):
            arf.on_success(7)
        assert arf.data_rate(7) is Rate.MBPS_5_5
        assert arf.upgrades == 1

    def test_steps_down_after_failure_run(self):
        arf = ArfRateController(ArfConfig(failure_threshold=2))
        arf.on_failure(7)
        assert arf.data_rate(7) is Rate.MBPS_2  # one failure: hold
        arf.on_failure(7)
        assert arf.data_rate(7) is Rate.MBPS_1
        assert arf.downgrades == 1

    def test_probation_drops_back_on_first_failure_after_upgrade(self):
        arf = ArfRateController(ArfConfig(success_threshold=2))
        arf.on_success(7)
        arf.on_success(7)
        assert arf.data_rate(7) is Rate.MBPS_5_5
        arf.on_failure(7)  # single failure during probation
        assert arf.data_rate(7) is Rate.MBPS_2

    def test_success_clears_probation(self):
        arf = ArfRateController(ArfConfig(success_threshold=2, failure_threshold=2))
        arf.on_success(7)
        arf.on_success(7)
        arf.on_success(7)  # settles at 5.5 Mbps
        arf.on_failure(7)  # single failure: no longer probation, hold
        assert arf.data_rate(7) is Rate.MBPS_5_5

    def test_clamped_at_ladder_ends(self):
        arf = ArfRateController(ArfConfig(success_threshold=1, failure_threshold=1))
        for _ in range(10):
            arf.on_success(7)
        assert arf.data_rate(7) is Rate.MBPS_11
        for _ in range(10):
            arf.on_failure(7)
        assert arf.data_rate(7) is Rate.MBPS_1
        arf.on_failure(7)  # at the floor: stays
        assert arf.data_rate(7) is Rate.MBPS_1

    def test_per_destination_state(self):
        arf = ArfRateController(ArfConfig(success_threshold=1))
        arf.on_success(1)
        assert arf.data_rate(1) is Rate.MBPS_5_5
        assert arf.data_rate(2) is Rate.MBPS_2

    def test_failure_resets_success_run(self):
        arf = ArfRateController(ArfConfig(success_threshold=3, failure_threshold=99))
        arf.on_success(7)
        arf.on_success(7)
        arf.on_failure(7)
        arf.on_success(7)
        arf.on_success(7)
        assert arf.data_rate(7) is Rate.MBPS_2  # run was broken

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            ArfConfig(success_threshold=0)
        with pytest.raises(ConfigurationError):
            ArfConfig(failure_threshold=0)

    def test_success_run_at_the_ceiling_never_overshoots(self):
        arf = ArfRateController(ArfConfig(success_threshold=1))
        for _ in range(20):
            arf.on_success(7)
        assert arf.data_rate(7) is Rate.MBPS_11
        assert arf.upgrades == 2  # 2 -> 5.5 -> 11 only

    def test_failure_at_the_floor_resets_the_failure_run(self):
        # Dropping is impossible at index 0, but the counters must still
        # clear so the next window starts fresh.
        arf = ArfRateController(
            ArfConfig(initial_rate=Rate.MBPS_1, failure_threshold=2)
        )
        for _ in range(4):
            arf.on_failure(7)
        assert arf.data_rate(7) is Rate.MBPS_1
        assert arf.downgrades == 0
        # Two successes then a failure: the run restarted from zero.
        arf.on_success(7)
        arf.on_failure(7)
        assert arf.data_rate(7) is Rate.MBPS_1


class TestArfIntegration:
    def test_arf_climbs_to_11_mbps_on_a_clean_short_link(self):
        from repro.apps.cbr import CbrSource
        from repro.apps.sink import UdpSink
        from repro.experiments.common import build_network
        from repro.mac.ratecontrol import ArfConfig

        net = build_network(
            [0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0, arf=ArfConfig()
        )
        sink = UdpSink(net[1], port=5001, warmup_s=1.0)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(2.0)
        assert net[0].rate_controller.data_rate(2) is Rate.MBPS_11
        # Post-climb throughput approaches the 11 Mbps bound.
        assert sink.throughput_bps(2.0) > 2.5e6

    def test_arf_settles_low_on_a_long_link(self):
        from repro.apps.cbr import CbrSource
        from repro.apps.sink import UdpSink
        from repro.experiments.common import build_network
        from repro.mac.ratecontrol import ArfConfig

        # 100 m: only 1 Mbps (113 m) survives; 2 Mbps (94 m) fails.
        net = build_network(
            [0, 100], data_rate=Rate.MBPS_11, fast_sigma_db=0.0, arf=ArfConfig()
        )
        sink = UdpSink(net[1], port=5001, warmup_s=1.0)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(3.0)
        assert net[0].rate_controller.data_rate(2) in (Rate.MBPS_1, Rate.MBPS_2)
        assert sink.packets > 0
