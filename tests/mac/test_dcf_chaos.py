"""Property-based chaos testing of the DCF over random scenarios.

Hypothesis generates arbitrary topologies and traffic patterns; the
invariants below must hold for every one of them:

* the state machine never raises (no impossible transitions);
* every delivered MSDU was actually sent by somebody (no invention);
* no receiver delivers the same (src, msdu) twice (duplicate filter);
* MAC accounting is conserved: successes + drops never exceed accepted
  MSDUs, and everything accepted is eventually accounted for.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.params import ALL_RATES
from repro.mac.frames import BROADCAST
from tests.util import build_mac_network

scenario = st.fixed_dictionaries(
    {
        "positions": st.lists(
            st.floats(min_value=0.0, max_value=160.0),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        "rate": st.sampled_from(ALL_RATES),
        "rts": st.booleans(),
        "sigma": st.sampled_from([0.0, 3.0]),
        "frag": st.sampled_from([None, 300]),
        "traffic": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # sender index
                st.integers(min_value=0, max_value=4),  # dst index (4=bcast)
                st.integers(min_value=40, max_value=1500),  # msdu bytes
                st.integers(min_value=0, max_value=50_000_000),  # t offset ns
            ),
            min_size=1,
            max_size=25,
        ),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(config=scenario)
def test_random_scenarios_preserve_invariants(config):
    net = build_mac_network(
        config["positions"],
        data_rate=config["rate"],
        rts_enabled=config["rts"],
        seed=config["seed"],
        fast_sigma_db=config["sigma"],
        fragmentation_threshold_bytes=config["frag"],
    )
    stations = net.stations
    sent: list[tuple[int, object]] = []  # (sender address, msdu)
    accepted_per_station = [0] * len(stations)
    for item, (sender_index, dst_index, msdu_bytes, offset_ns) in enumerate(
        config["traffic"]
    ):
        sender_index %= len(stations)
        if dst_index >= len(stations):
            dst = BROADCAST
        else:
            dst = stations[dst_index].mac.address
        if dst == stations[sender_index].mac.address:
            continue  # no self-traffic
        msdu = f"m{item}"

        def enqueue(i=sender_index, m=msdu, d=dst, b=msdu_bytes):
            if stations[i].mac.enqueue(m, d, b):
                accepted_per_station[i] += 1
                sent.append((stations[i].mac.address, m))

        net.sim.schedule(offset_ns, enqueue)
    # Run long enough for every retry ladder to resolve.
    net.sim.run(until_s=20.0)
    net.sim.run()

    sent_msdus = {msdu for _, msdu in sent}
    for station in stations:
        # No invented deliveries, and sources are truthful.
        for msdu, src in station.received:
            assert msdu in sent_msdus
            assert (src, msdu) in sent
        # Duplicate filtering: an MSDU object arrives at most once per
        # receiver.
        delivered = [msdu for msdu, _ in station.received]
        assert len(delivered) == len(set(delivered))
    for index, station in enumerate(stations):
        counters = station.mac.counters
        # Conservation: every accepted MSDU ends as success or drop,
        # never both, never more.
        assert counters.tx_success + counters.tx_drops == accepted_per_station[
            index
        ]
        assert not station.mac.busy
