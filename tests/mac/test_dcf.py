"""Integration tests of the DCF state machine over a real PHY and medium."""

import pytest

from repro.core.params import MacParameters, Rate
from repro.core.throughput_model import ThroughputModel
from repro.errors import ConfigurationError
from repro.mac.dcf import MacConfig
from repro.mac.frames import BROADCAST
from tests.util import build_mac_network, saturate


class TestBasicExchange:
    def test_single_msdu_is_delivered_and_acked(self):
        net = build_mac_network([0, 20])
        net[0].mac.enqueue("hello", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        assert net[1].received == [("hello", 1)]
        assert net[0].sent_results == [("hello", 2, True)]
        assert net[0].mac.counters.tx_success == 1
        assert net[1].mac.counters.ack_tx == 1

    def test_immediate_access_after_difs(self):
        net = build_mac_network([0, 20])
        net[0].mac.enqueue("x", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        # First frame on an idle medium: TX starts DIFS after enqueue,
        # with no backoff.  tx_data trace fires at exactly 50 us.
        assert net.tracer.count("mac.1.tx_data") == 1

    def test_multiple_msdus_in_order(self):
        net = build_mac_network([0, 20])
        for i in range(10):
            net[0].mac.enqueue(i, dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.5)
        assert [m for m, _ in net[1].received] == list(range(10))
        assert net[0].mac.counters.tx_success == 10

    def test_broadcast_is_delivered_without_ack(self):
        net = build_mac_network([0, 20, 40])
        net[0].mac.enqueue("news", dst=BROADCAST, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        assert net[1].received == [("news", 1)]
        assert net[2].received == [("news", 1)]
        assert net[1].mac.counters.ack_tx == 0
        assert net[0].mac.counters.tx_success == 1

    def test_unreachable_destination_retries_then_drops(self):
        net = build_mac_network([0, 20])
        net[0].mac.enqueue("void", dst=99, msdu_bytes=540)
        net.sim.run(until_s=0.5)
        mac = net[0].mac
        assert mac.counters.tx_drops == 1
        assert mac.counters.ack_timeouts == MacParameters().short_retry_limit + 1
        assert net[0].sent_results == [("void", 99, False)]

    def test_queue_overflow_is_counted(self):
        net = build_mac_network([0, 20], max_queue_frames=2)
        results = [net[0].mac.enqueue(i, dst=2, msdu_bytes=540) for i in range(5)]
        assert results.count(False) >= 2
        assert net[0].mac.counters.queue_drops >= 2

    def test_zero_byte_msdu_rejected(self):
        net = build_mac_network([0, 20])
        with pytest.raises(ConfigurationError):
            net[0].mac.enqueue("x", dst=2, msdu_bytes=0)

    def test_station_cannot_use_broadcast_address(self):
        with pytest.raises(ConfigurationError):
            MacConfig(address=BROADCAST, data_rate=Rate.MBPS_2)


class TestRtsCts:
    def test_rts_cts_exchange_delivers(self):
        net = build_mac_network([0, 20], rts_enabled=True)
        net[0].mac.enqueue("guarded", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.1)
        assert net[1].received == [("guarded", 1)]
        assert net[0].mac.counters.rts_tx == 1
        assert net[1].mac.counters.cts_tx == 1
        assert net[0].mac.counters.tx_success == 1

    def test_rts_retried_when_peer_missing(self):
        net = build_mac_network([0, 20], rts_enabled=True)
        net[0].mac.enqueue("x", dst=99, msdu_bytes=540)
        net.sim.run(until_s=0.5)
        mac = net[0].mac
        assert mac.counters.cts_timeouts == MacParameters().long_retry_limit + 1
        assert mac.counters.tx_drops == 1
        # The data frame itself never went out.
        assert mac.counters.data_tx == 0

    def test_third_station_defers_via_nav(self):
        # S3 hears S1's RTS and S2's CTS (all within 40 m) and must not
        # transmit during the protected exchange.
        net = build_mac_network([0, 20, 40], rts_enabled=True)
        net[0].mac.enqueue("protected", dst=2, msdu_bytes=1500)
        # S3 wants to talk to S2 shortly after S1's RTS goes out.
        net.sim.schedule_s(0.0003, net[2].mac.enqueue, "later", 2, 540)
        net.sim.run(until_s=0.2)
        assert ("protected", 1) in net[1].received
        assert ("later", 3) in net[1].received
        # Both transfers succeeded despite the overlap in time.
        assert net[0].mac.counters.tx_success == 1
        assert net[2].mac.counters.tx_success == 1


class TestContention:
    def test_two_saturated_stations_share_the_channel(self):
        net = build_mac_network([0, 10, 20])
        saturate(net, sender=0, receiver=1, msdu_bytes=540)
        saturate(net, sender=2, receiver=1, msdu_bytes=540)
        net.sim.run(until_s=2.0)
        from_s1 = sum(1 for _, src in net[1].received if src == 1)
        from_s3 = sum(1 for _, src in net[1].received if src == 3)
        assert from_s1 > 100
        assert from_s3 > 100
        ratio = from_s1 / from_s3
        assert 0.8 < ratio < 1.25

    def test_collisions_are_resolved_by_backoff(self):
        net = build_mac_network([0, 10, 20])
        # Enqueue on both senders at the same instant: the first attempt
        # may collide, but retries must eventually deliver both.
        net[0].mac.enqueue("a", dst=2, msdu_bytes=540)
        net[2].mac.enqueue("b", dst=2, msdu_bytes=540)
        net.sim.run(until_s=0.5)
        received = {m for m, _ in net[1].received}
        assert received == {"a", "b"}


class TestSaturationThroughputMatchesEquation1:
    @pytest.mark.parametrize("rate", [Rate.MBPS_11, Rate.MBPS_2])
    def test_udp_saturation_close_to_analytic_bound(self, rate):
        net = build_mac_network([0, 10], data_rate=rate)
        saturate(net, sender=0, receiver=1, msdu_bytes=540)
        horizon_s = 2.0
        net.sim.run(until_s=horizon_s)
        delivered = len(net[1].received)
        throughput_bps = delivered * 512 * 8 / horizon_s
        expected = ThroughputModel().max_throughput_bps(512, rate, rts_cts=False)
        assert throughput_bps == pytest.approx(expected, rel=0.04)

    def test_rts_cts_saturation_close_to_equation_2(self):
        net = build_mac_network([0, 10], data_rate=Rate.MBPS_11, rts_enabled=True)
        saturate(net, sender=0, receiver=1, msdu_bytes=540)
        horizon_s = 2.0
        net.sim.run(until_s=horizon_s)
        throughput_bps = len(net[1].received) * 512 * 8 / horizon_s
        expected = ThroughputModel().max_throughput_bps(512, Rate.MBPS_11, rts_cts=True)
        assert throughput_bps == pytest.approx(expected, rel=0.04)


class TestDuplicateFiltering:
    def test_duplicate_data_is_acked_but_not_redelivered(self):
        # Put the receiver where it can hear the sender but its ACKs are
        # suppressed by a busy channel... simpler: force duplicates by
        # making a jammer kill ACKs is involved; instead check the dup
        # cache directly through retransmission after a *lost* ACK.
        # With ALWAYS ack policy and an interferer positioned to destroy
        # only ACKs this is hard to arrange deterministically, so this
        # test drives the receiver's handler directly.
        net = build_mac_network([0, 20])
        receiver = net[1].mac
        from repro.mac.frames import DataFrame

        frame = DataFrame(src=7, dst=2, duration_us=0.0, seq=5, msdu="m", msdu_bytes=540)
        receiver._handle_data(frame)
        receiver._handle_data(frame)
        assert net[1].received == [("m", 7)]
        assert receiver.counters.rx_duplicates == 1
