"""Property suite for the binary-exponential backoff schedule.

Unlike ``test_backoff.py`` (which pins Table 1 defaults), every
property here is parameterised over the :class:`MacParamsSpec` override
ranges the ``mac-surface`` experiment sweeps, so the schedule invariants
hold for *any* CWmin/CWmax/retry configuration a sweep can produce —
not just the 802.11b defaults.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.params import MacParameters
from repro.mac.backoff import Backoff, ContentionWindow
from repro.scenario import MacParamsSpec

#: CW bounds drawn as powers of two spanning the sweepable range
#: (SURFACE_AXES uses 16..128 for CWmin, 64..1024 for CWmax).
_cw_exponents = st.integers(min_value=0, max_value=11)


@st.composite
def mac_params_specs(draw) -> MacParamsSpec:
    """A valid MacParamsSpec over the surface's sweep ranges."""
    lo = draw(_cw_exponents)
    hi = draw(_cw_exponents)
    lo, hi = min(lo, hi), max(lo, hi)
    return MacParamsSpec(
        cw_min_slots=2**lo,
        cw_max_slots=2**hi,
        short_retry_limit=draw(st.integers(min_value=0, max_value=10)),
    )


def _mac(spec: MacParamsSpec) -> MacParameters:
    return spec.to_mac_parameters(MacParameters())


@given(spec=mac_params_specs(), failures=st.integers(min_value=0, max_value=16))
def test_window_doubles_and_clamps_at_cw_max(spec, failures):
    mac = _mac(spec)
    cw = ContentionWindow(mac)
    for _ in range(failures):
        before = cw.window_slots
        cw.double()
        assert cw.window_slots == min(2 * before, mac.cw_max_slots)
    assert cw.window_slots == min(
        mac.cw_min_slots * 2**failures, mac.cw_max_slots
    )


@given(spec=mac_params_specs(), failures=st.integers(min_value=0, max_value=16))
def test_reset_returns_to_cw_min_from_any_state(spec, failures):
    """Success and retry-limit drop both snap the window back to CWmin."""
    mac = _mac(spec)
    cw = ContentionWindow(mac)
    for _ in range(failures):
        cw.double()
    cw.reset()
    assert cw.window_slots == mac.cw_min_slots


@given(spec=mac_params_specs())
def test_retry_schedule_never_leaves_bounds(spec):
    """A full retry lifecycle (up to the limit, then drop) stays in
    [CWmin, CWmax] at every attempt."""
    mac = _mac(spec)
    cw = ContentionWindow(mac)
    for _ in range(mac.short_retry_limit + 1):
        assert mac.cw_min_slots <= cw.window_slots <= mac.cw_max_slots
        cw.double()
    cw.reset()  # retry limit exhausted: frame dropped
    assert cw.window_slots == mac.cw_min_slots


@given(
    spec=mac_params_specs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    failures=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=50)
def test_draws_are_uniform_over_the_current_window(spec, seed, failures):
    mac = _mac(spec)
    cw = ContentionWindow(mac)
    for _ in range(failures):
        cw.double()
    rng = random.Random(seed)
    draws = [cw.draw(rng) for _ in range(64)]
    assert all(0 <= d < cw.window_slots for d in draws)
    if cw.window_slots >= 8:
        # Coarse uniformity: both halves of the window get draws.
        half = cw.window_slots / 2
        assert any(d < half for d in draws)
        assert any(d >= half for d in draws)


@given(
    spec=mac_params_specs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50)
def test_rng_consumption_is_deterministic_per_seed(spec, seed):
    """Same seed, same schedule -> identical draw sequence, and the RNG
    ends in the same state (the determinism the trace goldens rely on)."""
    mac = _mac(spec)

    def run() -> tuple[list[int], tuple]:
        cw = ContentionWindow(mac)
        rng = random.Random(seed)
        draws = []
        for _ in range(6):
            draws.append(cw.draw(rng))
            cw.double()
        cw.reset()
        draws.append(cw.draw(rng))
        return draws, rng.getstate()

    first_draws, first_state = run()
    second_draws, second_state = run()
    assert first_draws == second_draws
    assert first_state == second_state


@given(
    spec=mac_params_specs(),
    slots=st.integers(min_value=0, max_value=1023),
    gaps_us=st.lists(
        st.integers(min_value=0, max_value=5_000), max_size=8
    ),
)
def test_backoff_consumes_whole_slots_under_any_timing(spec, slots, gaps_us):
    """Slot consumption honours overridden slot times: only whole
    elapsed slots count, and the remainder never goes negative."""
    slot_spec = MacParamsSpec(
        cw_min_slots=spec.cw_min_slots,
        cw_max_slots=spec.cw_max_slots,
        slot_time_us=9.0,
        sifs_us=10.0,
    )
    mac = _mac(slot_spec)
    slot_ns = round(mac.slot_time_us * 1000)
    backoff = Backoff(mac)
    backoff.begin(slots)
    t = 0
    expected = slots
    for gap_us in gaps_us:
        backoff.countdown_started(t)
        t += gap_us * 1000
        backoff.countdown_stopped(t)
        expected = max(0, expected - (gap_us * 1000) // slot_ns)
        assert backoff.remaining_slots == expected
    backoff.finish()
    assert not backoff.pending
