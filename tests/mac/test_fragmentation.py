"""Tests for MAC-level fragmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.mac.dcf import MacConfig, split_msdu
from repro.mac.frames import BROADCAST
from tests.util import build_mac_network


class TestSplitMsdu:
    def test_below_threshold_single_fragment(self):
        assert split_msdu(500, 1000) == [500]

    def test_exact_threshold_single_fragment(self):
        assert split_msdu(1000, 1000) == [1000]

    def test_split_with_remainder(self):
        assert split_msdu(1052, 500) == [500, 500, 52]

    def test_split_exact_multiple(self):
        assert split_msdu(1000, 500) == [500, 500]

    @given(
        msdu=st.integers(min_value=1, max_value=10_000),
        threshold=st.integers(min_value=64, max_value=2346),
    )
    def test_fragments_conserve_bytes(self, msdu, threshold):
        sizes = split_msdu(msdu, threshold)
        assert sum(sizes) == msdu
        assert all(0 < size <= threshold for size in sizes)
        # Only the last fragment may be short.
        assert all(size == threshold for size in sizes[:-1])


class TestFragmentedTransfer:
    def test_large_msdu_delivered_once(self):
        net = build_mac_network([0, 20], fragmentation_threshold_bytes=400)
        net[0].mac.enqueue("big", dst=2, msdu_bytes=1500)
        net.sim.run(until_s=0.2)
        assert net[1].received == [("big", 1)]
        # 1500 B at 400 B threshold: 4 fragments, each ACKed.
        assert net[0].mac.counters.data_tx == 4
        assert net[1].mac.counters.ack_tx == 4
        assert net[0].mac.counters.fragments_tx == 3  # non-final fragments
        assert net[0].mac.counters.tx_success == 1

    def test_small_msdu_not_fragmented(self):
        net = build_mac_network([0, 20], fragmentation_threshold_bytes=1000)
        net[0].mac.enqueue("small", dst=2, msdu_bytes=500)
        net.sim.run(until_s=0.2)
        assert net[1].received == [("small", 1)]
        assert net[0].mac.counters.data_tx == 1

    def test_broadcast_never_fragments(self):
        net = build_mac_network([0, 20], fragmentation_threshold_bytes=400)
        net[0].mac.enqueue("bcast", dst=BROADCAST, msdu_bytes=1500)
        net.sim.run(until_s=0.2)
        assert net[1].received == [("bcast", 1)]
        assert net[0].mac.counters.data_tx == 1

    def test_fragments_with_rts_cts(self):
        net = build_mac_network(
            [0, 20], rts_enabled=True, fragmentation_threshold_bytes=500
        )
        net[0].mac.enqueue("guarded", dst=2, msdu_bytes=1500)
        net.sim.run(until_s=0.2)
        assert net[1].received == [("guarded", 1)]
        # One RTS protects the burst; fragments chain via NAV.
        assert net[0].mac.counters.rts_tx == 1
        assert net[0].mac.counters.data_tx == 3

    def test_many_fragmented_msdus_in_order(self):
        net = build_mac_network([0, 20], fragmentation_threshold_bytes=300)
        for index in range(5):
            net[0].mac.enqueue(index, dst=2, msdu_bytes=1000)
        net.sim.run(until_s=1.0)
        assert [m for m, _ in net[1].received] == list(range(5))

    def test_third_station_defers_through_fragment_burst(self):
        # The NAV chain must hold a contender off for the whole burst.
        net = build_mac_network([0, 20, 40], fragmentation_threshold_bytes=400)
        net[0].mac.enqueue("burst", dst=2, msdu_bytes=2000)
        net.sim.schedule_s(0.001, net[2].mac.enqueue, "later", 2, 300)
        net.sim.run(until_s=0.5)
        received = [m for m, _ in net[1].received]
        assert set(received) == {"burst", "later"}
        assert net[0].mac.counters.tx_success == 1
        assert net[2].mac.counters.tx_success == 1

    def test_unreachable_destination_drops_whole_msdu(self):
        net = build_mac_network([0, 20], fragmentation_threshold_bytes=400)
        net[0].mac.enqueue("void", dst=99, msdu_bytes=1200)
        net.sim.run(until_s=1.0)
        assert net[0].mac.counters.tx_drops == 1
        assert net[0].sent_results == [("void", 99, False)]

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            MacConfig(
                address=1,
                data_rate=Rate.MBPS_2,
                fragmentation_threshold_bytes=10,
            )

    def test_throughput_overhead_of_fragmentation(self):
        """Fragmenting costs airtime: more PLCP/header/ACK per MSDU."""
        from tests.util import saturate

        def throughput(threshold):
            net = build_mac_network(
                [0, 10],
                data_rate=Rate.MBPS_11,
                fragmentation_threshold_bytes=threshold,
            )
            saturate(net, 0, 1, msdu_bytes=1052)
            net.sim.run(until_s=1.5)
            return len(net[1].received)

        assert throughput(None) > throughput(400) * 1.2
