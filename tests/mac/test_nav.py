"""Tests for the NAV (virtual carrier sense)."""

from repro.mac.nav import Nav
from repro.sim.engine import Simulator


def make_nav():
    sim = Simulator()
    expirations = []
    nav = Nav(sim, lambda: expirations.append(sim.now_ns))
    return sim, nav, expirations


class TestNav:
    def test_idle_initially(self):
        _, nav, _ = make_nav()
        assert not nav.busy

    def test_update_sets_reservation(self):
        sim, nav, expirations = make_nav()
        assert nav.update(1_000_000)
        assert nav.busy
        sim.run()
        assert not nav.busy
        assert expirations == [1_000_000]

    def test_nav_only_extends_forward(self):
        _, nav, _ = make_nav()
        nav.update(1_000_000)
        assert not nav.update(500_000)
        assert nav.until_ns == 1_000_000

    def test_longer_update_wins(self):
        sim, nav, expirations = make_nav()
        nav.update(1_000_000)
        nav.update(2_000_000)
        sim.run()
        # Only the later expiry fires.
        assert expirations == [2_000_000]

    def test_update_in_the_past_is_ignored(self):
        sim, nav, _ = make_nav()
        sim.schedule(100, lambda: None)
        sim.run()
        assert not nav.update(50)
        assert not nav.busy

    def test_reset_clears_and_notifies(self):
        sim, nav, expirations = make_nav()
        nav.update(1_000_000)
        nav.reset()
        assert not nav.busy
        assert expirations == [0]
        sim.run()
        assert expirations == [0]  # the old timer must not fire again

    def test_reset_when_idle_is_silent(self):
        sim, nav, expirations = make_nav()
        nav.reset()
        assert expirations == []

    def test_busy_transitions_at_expiry_instant(self):
        sim, nav, _ = make_nav()
        nav.update(1_000)
        seen = []
        sim.schedule(999, lambda: seen.append(nav.busy))
        sim.schedule(1_001, lambda: seen.append(nav.busy))
        sim.run()
        assert seen == [True, False]

    def test_mid_run_extension_rearms_the_stale_wakeup(self):
        # The coalesced-timer path: the armed wakeup fires at the *old*
        # expiry, finds the NAV was extended meanwhile, and re-arms
        # instead of notifying early.
        sim, nav, expirations = make_nav()
        nav.update(1_000_000)
        sim.schedule(500_000, lambda: nav.update(3_000_000))
        sim.run()
        assert expirations == [3_000_000]

    def test_rejected_update_does_not_rearm(self):
        sim, nav, expirations = make_nav()
        nav.update(1_000_000)
        assert not nav.update(1_000_000)  # equal: no extension
        sim.run()
        assert expirations == [1_000_000]

    def test_nav_is_reusable_after_reset(self):
        sim, nav, expirations = make_nav()
        nav.update(1_000_000)
        nav.reset()
        assert nav.update(2_000_000)  # a fresh timer must start
        sim.run()
        assert expirations == [0, 2_000_000]

    def test_nav_is_reusable_after_expiry(self):
        sim, nav, expirations = make_nav()
        nav.update(1_000)
        sim.schedule(2_000, lambda: nav.update(5_000))
        sim.run()
        assert expirations == [1_000, 5_000]
