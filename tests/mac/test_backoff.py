"""Tests for contention-window and backoff bookkeeping."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.params import MacParameters
from repro.errors import MacError
from repro.mac.backoff import Backoff, ContentionWindow


@pytest.fixture
def mac():
    return MacParameters()


class TestContentionWindow:
    def test_starts_at_cw_min(self, mac):
        assert ContentionWindow(mac).window_slots == 32

    def test_doubles_up_to_cw_max(self, mac):
        cw = ContentionWindow(mac)
        sizes = []
        for _ in range(8):
            cw.double()
            sizes.append(cw.window_slots)
        assert sizes == [64, 128, 256, 512, 1024, 1024, 1024, 1024]

    def test_reset_returns_to_cw_min(self, mac):
        cw = ContentionWindow(mac)
        cw.double()
        cw.double()
        cw.reset()
        assert cw.window_slots == 32

    def test_draw_within_window(self, mac):
        cw = ContentionWindow(mac)
        rng = random.Random(3)
        draws = [cw.draw(rng) for _ in range(500)]
        assert all(0 <= d < 32 for d in draws)
        # The draw is uniform over [0, 31]: mean 15.5 (what makes the
        # paper's Table 2 reproduce).
        assert sum(draws) / len(draws) == pytest.approx(15.5, abs=1.0)

    @given(doublings=st.integers(min_value=0, max_value=20))
    def test_window_always_within_bounds(self, doublings):
        mac = MacParameters()
        cw = ContentionWindow(mac)
        for _ in range(doublings):
            cw.double()
        assert mac.cw_min_slots <= cw.window_slots <= mac.cw_max_slots


class TestBackoff:
    def test_not_pending_initially(self, mac):
        assert not Backoff(mac).pending

    def test_begin_and_finish(self, mac):
        backoff = Backoff(mac)
        backoff.begin(5)
        assert backoff.pending
        assert backoff.remaining_slots == 5
        backoff.finish()
        assert not backoff.pending

    def test_negative_slots_rejected(self, mac):
        with pytest.raises(MacError):
            Backoff(mac).begin(-1)

    def test_remaining_without_backoff_rejected(self, mac):
        with pytest.raises(MacError):
            Backoff(mac).remaining_slots

    def test_full_slots_consumed_on_interruption(self, mac):
        backoff = Backoff(mac)
        backoff.begin(10)
        backoff.countdown_started(0)
        # 3.5 slots elapse (slot = 20 us = 20_000 ns): only 3 count.
        backoff.countdown_stopped(70_000)
        assert backoff.remaining_slots == 7

    def test_interruption_before_countdown_consumes_nothing(self, mac):
        backoff = Backoff(mac)
        backoff.begin(10)
        # Busy again before the IFS completed: countdown never started.
        backoff.countdown_stopped(5_000)
        assert backoff.remaining_slots == 10

    def test_interruption_before_ifs_end_consumes_nothing(self, mac):
        backoff = Backoff(mac)
        backoff.begin(10)
        backoff.countdown_started(50_000)  # first slot begins at 50 us
        backoff.countdown_stopped(40_000)  # busy arrives before that
        assert backoff.remaining_slots == 10

    def test_cannot_exceed_remaining(self, mac):
        backoff = Backoff(mac)
        backoff.begin(2)
        backoff.countdown_started(0)
        backoff.countdown_stopped(1_000_000)
        assert backoff.remaining_slots == 0

    def test_countdown_started_without_begin_rejected(self, mac):
        with pytest.raises(MacError):
            Backoff(mac).countdown_started(0)

    @given(
        slots=st.integers(min_value=0, max_value=1023),
        interruptions=st.lists(
            st.integers(min_value=0, max_value=200_000), max_size=10
        ),
    )
    def test_remaining_never_negative(self, slots, interruptions):
        mac = MacParameters()
        backoff = Backoff(mac)
        backoff.begin(slots)
        t = 0
        for gap in interruptions:
            backoff.countdown_started(t)
            t += gap
            backoff.countdown_stopped(t)
            assert 0 <= backoff.remaining_slots <= slots
