"""Tests for text tables, ASCII plots and CSV export."""

import pytest

from repro.analysis.ascii_plot import line_plot
from repro.analysis.csvio import write_csv
from repro.analysis.tables import render_table
from repro.errors import ConfigurationError


class TestRenderTable:
    def test_columns_align(self):
        text = render_table(["name", "value"], [("a", 1), ("longer", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # Header and rows share the same column offsets.
        assert lines[0].index("value") == lines[2].index("1")

    def test_floats_get_three_decimals(self):
        text = render_table(["x"], [(1.23456,)])
        assert "1.235" in text

    def test_title_is_first_line(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])


class TestLinePlot:
    def test_contains_series_glyphs_and_legend(self):
        text = line_plot(
            [1, 2, 3],
            {"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]},
            height=5,
        )
        assert "o=up" in text
        assert "x=down" in text

    def test_monotone_series_renders_monotone_column_heights(self):
        text = line_plot([1, 2, 3, 4], {"s": [0.0, 0.33, 0.66, 1.0]}, height=4)
        rows = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        columns = {}
        for row_index, row in enumerate(rows):
            for col_index, char in enumerate(row):
                if char == "o":
                    columns[col_index] = row_index
        assert sorted(columns) == [0, 1, 2, 3]
        heights = [columns[i] for i in sorted(columns)]
        assert heights == sorted(heights, reverse=True)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot([1, 2], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot([1], {})

    def test_flat_series_does_not_crash(self):
        text = line_plot([1, 2], {"flat": [0.5, 0.5]})
        assert "flat" in text


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [(1, 2), (3, 4)])
        content = path.read_text().strip().splitlines()
        assert content == ["a,b", "1,2", "3,4"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "out.csv", ["x"], [(1,)])
        assert path.exists()

    def test_mismatched_row_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [(1,)])
