"""Tests for the closed-form DCF model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.analytic import (
    collision_overhead_us,
    contention_windows,
    jain_index,
    max_throughput_by_rate,
    predict_scenario,
    retry_limited_tau,
    saturation_throughput,
    solve_fixed_point,
)
from repro.core.params import Dot11bConfig, MacParameters, Rate
from repro.core.throughput_model import ThroughputModel
from repro.errors import ConfigurationError


class TestContentionWindows:
    def test_doubling_schedule_clamps_at_cw_max(self):
        assert contention_windows(32, 1024, 7) == (
            32, 64, 128, 256, 512, 1024, 1024, 1024,
        )

    def test_zero_retries_is_a_single_stage(self):
        assert contention_windows(32, 1024, 0) == (32,)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            contention_windows(0, 1024, 7)
        with pytest.raises(ConfigurationError):
            contention_windows(64, 32, 7)
        with pytest.raises(ConfigurationError):
            contention_windows(32, 1024, -1)


class TestTau:
    def test_no_collisions_is_the_textbook_value(self):
        # p = 0: only stage 0, tau = 2 / (W + 1).
        assert retry_limited_tau(0.0, 32, 1024, 7) == pytest.approx(2 / 33)

    def test_matches_bianchi_infinite_retry_limit(self):
        # Bianchi Eq. (7) with m backoff stages; a huge retry limit
        # must converge to it.
        p, w, m = 0.2, 32, 5
        bianchi = (2 * (1 - 2 * p)) / (
            (1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)
        )
        ours = retry_limited_tau(p, w, w * 2**m, 400)
        assert ours == pytest.approx(bianchi, rel=1e-9)

    def test_tau_decreases_with_collision_probability(self):
        taus = [retry_limited_tau(p, 32, 1024, 7) for p in (0.0, 0.2, 0.5)]
        assert taus == sorted(taus, reverse=True)

    def test_invalid_p_rejected(self):
        with pytest.raises(ConfigurationError):
            retry_limited_tau(1.0, 32, 1024, 7)


class TestFixedPoint:
    def test_single_station_never_collides(self):
        tau, p = solve_fixed_point(1, 32, 1024, 7)
        assert p == 0.0
        assert tau == pytest.approx(2 / 33)

    def test_solution_is_consistent(self):
        tau, p = solve_fixed_point(5, 32, 1024, 7)
        assert p == pytest.approx(1 - (1 - tau) ** 4, abs=1e-9)

    @given(stations=st.integers(min_value=2, max_value=50))
    def test_collision_probability_grows_with_stations(self, stations):
        _, p_small = solve_fixed_point(stations, 32, 1024, 7)
        _, p_large = solve_fixed_point(stations + 1, 32, 1024, 7)
        assert 0.0 < p_small < p_large < 1.0

    def test_zero_stations_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_fixed_point(0, 32, 1024, 7)


class TestSaturationThroughput:
    def test_single_station_equals_the_zero_contention_bound(self):
        # With n = 1 the Bianchi slot expectation collapses to exactly
        # the Eq. 1/2 overhead accounting (DIFS + frame + SIFS + ACK +
        # mean initial backoff), so the two models must agree.
        prediction = saturation_throughput(1, app_payload_bytes=1024)
        assert prediction.efficiency == pytest.approx(1.0)

    def test_throughput_degrades_with_contention(self):
        # Collisions erode throughput monotonically once more than one
        # station contends (n=2 can sit slightly *above* n=1, which
        # idles the full mean backoff unshared).
        points = [
            saturation_throughput(n, app_payload_bytes=1024).throughput_bps
            for n in (2, 5, 10, 20)
        ]
        assert points == sorted(points, reverse=True)

    def test_larger_cw_min_helps_under_heavy_contention(self):
        crowded = Dot11bConfig(mac=MacParameters(cw_min_slots=256))
        assert (
            saturation_throughput(20, config=crowded).throughput_bps
            > saturation_throughput(20).throughput_bps
        )

    def test_drop_probability_follows_the_retry_limit(self):
        eager = saturation_throughput(10, retry_limit=0)
        patient = saturation_throughput(10, retry_limit=7)
        assert eager.drop_probability == pytest.approx(
            eager.collision_probability
        )
        assert patient.drop_probability < eager.drop_probability

    def test_collision_overhead_models(self):
        config = Dot11bConfig()
        sim = collision_overhead_us(config, "sim")
        difs = collision_overhead_us(config, "difs")
        # Defaults: EIFS (364 us) dominates the ack-timeout + DIFS path.
        assert sim == pytest.approx(config.mac.eifs_us(config.plcp))
        assert difs == config.mac.difs_us
        with pytest.raises(ConfigurationError):
            collision_overhead_us(config, "nonsense")


class TestMaxThroughputByRate:
    def test_matches_the_table2_model(self):
        model = ThroughputModel()
        for entry in max_throughput_by_rate(512):
            assert entry.max_throughput_bps == model.max_throughput_bps(
                512, entry.data_rate
            )

    def test_efficiency_falls_as_the_phy_rate_rises(self):
        entries = max_throughput_by_rate(512)
        efficiencies = [entry.efficiency for entry in entries]
        assert efficiencies == sorted(efficiencies, reverse=True)
        assert entries[-1].data_rate is Rate.MBPS_11
        assert entries[-1].efficiency < 0.35  # the paper's ~3 of 11 Mbps

    def test_overhead_fraction_is_the_complement_of_payload_share(self):
        for entry in max_throughput_by_rate(1024):
            share = entry.payload_us / entry.occupancy.total_us
            assert entry.overhead_fraction == pytest.approx(1.0 - share)


class TestPredictScenario:
    def test_uses_the_spec_mac_overrides(self):
        from repro.experiments.mac_surface import saturation_spec
        from repro.scenario import MacParamsSpec

        default = predict_scenario(saturation_spec(5))
        wide = predict_scenario(
            saturation_spec(5, mac=MacParamsSpec(cw_min_slots=256))
        )
        assert wide.collision_probability < default.collision_probability

    def test_rejects_paced_flows(self):
        from repro.experiments.mac_surface import saturation_spec
        from repro.scenario import ScenarioSpec

        doc = saturation_spec(2).to_dict()
        doc["traffic"]["flows"][0]["rate_bps"] = 1e6
        with pytest.raises(ConfigurationError, match="saturated"):
            predict_scenario(ScenarioSpec.from_dict(doc))

    def test_rejects_empty_traffic(self):
        from repro.experiments.mac_surface import saturation_spec
        from repro.scenario import ScenarioSpec

        doc = saturation_spec(2).to_dict()
        doc["traffic"]["flows"] = []
        with pytest.raises(ConfigurationError, match="no flows"):
            predict_scenario(ScenarioSpec.from_dict(doc))


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([1.0, -1.0])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_always_in_the_unit_interval(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0 + 1e-9
