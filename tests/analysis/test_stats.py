"""Tests for statistics utilities."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import RunningStats, confidence_interval, summarize
from repro.errors import ConfigurationError


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_matches_statistics_module(self):
        values = [1.5, 2.5, 3.0, 4.25, 5.75, 6.0]
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.variance == pytest.approx(statistics.variance(values))
        assert stats.stdev == pytest.approx(statistics.stdev(values))

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_single_sample_has_zero_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=80))
    def test_agrees_with_batch_computation(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            statistics.variance(values), abs=1e-4, rel=1e-6
        )


class TestConfidenceInterval:
    def test_single_value(self):
        mean, half = confidence_interval([4.2])
        assert (mean, half) == (4.2, 0.0)

    def test_known_interval(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        mean, half = confidence_interval(values, confidence=0.95)
        assert mean == pytest.approx(11.0)
        # t(0.975, 4) = 2.776; s = sqrt(2.5); half = 2.776 * s / sqrt(5).
        expected = 2.776 * math.sqrt(2.5) / math.sqrt(5)
        assert half == pytest.approx(expected, abs=0.01)

    def test_wider_at_higher_confidence(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        _, h95 = confidence_interval(values, 0.95)
        _, h99 = confidence_interval(values, 0.99)
        assert h99 > h95

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_interval([1.0], confidence=1.5)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3
        assert "±" in str(summary)
