"""Tests for the measurement meters."""

import pytest

from repro.analysis.meters import DelayMeter, LossMeter, ThroughputMeter
from repro.errors import ConfigurationError


class TestThroughputMeter:
    def test_counts_bytes_over_window(self):
        meter = ThroughputMeter()
        meter.record_ns(1000, 500_000_000)
        meter.record_ns(1000, 1_000_000_000)
        assert meter.throughput_bps(2.0) == pytest.approx(2000 * 8 / 2.0)

    def test_warmup_excludes_early_bytes(self):
        meter = ThroughputMeter(warmup_s=1.0)
        meter.record_ns(5000, 500_000_000)  # dropped
        meter.record_ns(1000, 1_500_000_000)
        assert meter.bytes == 1000
        assert meter.throughput_bps(2.0) == pytest.approx(8000.0)

    def test_defaults_to_last_record_time(self):
        meter = ThroughputMeter()
        meter.record_ns(1000, 4_000_000_000)
        assert meter.throughput_bps() == pytest.approx(2000.0)

    def test_empty_window_is_zero(self):
        meter = ThroughputMeter(warmup_s=1.0)
        assert meter.throughput_bps(0.5) == 0.0

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputMeter(warmup_s=-1.0)

    def test_warmup_boundary_is_inclusive(self):
        # A delivery at exactly t == warmup must count: every sink gates
        # with `now >= warmup`, and the meter must agree with the sinks.
        meter = ThroughputMeter(warmup_s=1.0)
        assert meter.warmup_ns == 1_000_000_000
        meter.record_ns(100, 999_999_999)  # one ns early: dropped
        assert meter.bytes == 0
        meter.record_ns(100, 1_000_000_000)  # exactly on the boundary
        assert meter.bytes == 100
        meter.record_ns(100, 1_000_000_001)
        assert meter.bytes == 200

    def test_float_path_is_deprecated_but_equivalent(self):
        meter = ThroughputMeter(warmup_s=1.0)
        with pytest.warns(DeprecationWarning):
            meter.record(1000, 1.5)
        assert meter.bytes == 1000
        assert meter.throughput_bps(2.0) == pytest.approx(8000.0)

    def test_float_boundary_record_counts(self):
        meter = ThroughputMeter(warmup_s=1.0)
        with pytest.warns(DeprecationWarning):
            meter.record(100, 1.0)  # exactly the warmup instant
        assert meter.bytes == 100


class TestLossMeter:
    def test_loss_rate(self):
        meter = LossMeter()
        meter.record_sent(10)
        meter.record_received(7)
        assert meter.loss_rate == pytest.approx(0.3)

    def test_no_traffic_means_no_loss(self):
        assert LossMeter().loss_rate == 0.0

    def test_more_received_than_sent_clamps(self):
        meter = LossMeter()
        meter.record_sent(1)
        meter.record_received(2)  # duplicates can inflate this
        assert meter.loss_rate == 0.0

    def test_ns_entry_points_pin_the_window(self):
        meter = LossMeter()
        meter.record_sent_ns(2_000_000)
        meter.record_sent_ns(1_000_000)
        meter.record_received_ns(5_000_000)
        meter.record_received_ns(3_000_000)
        assert meter.sent == 2
        assert meter.received == 2
        assert meter.first_sent_ns == 1_000_000
        assert meter.last_received_ns == 5_000_000
        assert meter.loss_rate == 0.0


class TestDelayMeter:
    def test_mean_and_max(self):
        meter = DelayMeter()
        meter.record(0.0, 0.010)
        meter.record(1.0, 1.030)
        assert meter.count == 2
        assert meter.mean_s == pytest.approx(0.020)
        assert meter.max_s == pytest.approx(0.030)

    def test_percentile(self):
        meter = DelayMeter()
        for index in range(100):
            meter.record(0.0, (index + 1) / 1000)
        assert meter.percentile_s(0.5) == pytest.approx(0.050, abs=0.002)
        assert meter.percentile_s(1.0) == pytest.approx(0.100)

    def test_warmup_trims_samples(self):
        meter = DelayMeter(warmup_s=1.0)
        meter.record(0.0, 0.5)  # before warmup: ignored
        meter.record(1.0, 1.5)
        assert meter.count == 1

    def test_time_travel_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayMeter().record(1.0, 0.5)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayMeter().percentile_s(1.5)

    def test_empty_percentile_is_zero(self):
        assert DelayMeter().percentile_s(0.5) == 0.0
