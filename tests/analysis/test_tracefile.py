"""Tests for JSONL trace persistence."""

from repro.analysis.tracefile import TraceWriter, read_trace
from repro.sim.tracing import Tracer


class TestTraceWriter:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "run.jsonl"
        with TraceWriter(tracer, path) as writer:
            tracer.emit(100, "mac", "tx_data", dst=2, seq=5)
            tracer.emit(200, "phy", "rx_lock", rx_dbm=-70.5)
        assert writer.records_written == 2
        records = read_trace(path)
        assert records[0] == {
            "t_ns": 100,
            "category": "mac",
            "event": "tx_data",
            "dst": 2,
            "seq": 5,
        }
        assert records[1]["rx_dbm"] == -70.5

    def test_prefix_filtering(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "mac-only.jsonl"
        with TraceWriter(tracer, path, prefix="mac.") as writer:
            tracer.emit(0, "mac", "tx_data")
            tracer.emit(0, "phy", "rx_lock")
        assert writer.records_written == 1

    def test_detaches_on_exit(self, tmp_path):
        tracer = Tracer()
        with TraceWriter(tracer, tmp_path / "t.jsonl"):
            pass
        tracer.emit(0, "mac", "tx_data")  # must not explode
        assert not tracer.enabled

    def test_creates_parent_directories(self, tmp_path):
        tracer = Tracer()
        with TraceWriter(tracer, tmp_path / "deep" / "t.jsonl"):
            tracer.emit(0, "a", "b")
        assert (tmp_path / "deep" / "t.jsonl").exists()

    def test_real_simulation_trace(self, tmp_path):
        from repro.apps.cbr import CbrSource
        from repro.apps.sink import UdpSink
        from repro.experiments.common import build_network
        from repro.core.params import Rate

        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512,
                  rate_bps=1e6)
        path = tmp_path / "sim.jsonl"
        with TraceWriter(net.tracer, path, prefix="mac."):
            net.run(0.1)
        records = read_trace(path)
        events = {record["event"] for record in records}
        assert "tx_data" in events
        assert "tx_ack" in events
        # Records are time-ordered.
        times = [record["t_ns"] for record in records]
        assert times == sorted(times)
