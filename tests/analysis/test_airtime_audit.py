"""Tests for the airtime auditor."""

import pytest

from repro.analysis.airtime_audit import AirtimeAuditor
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.experiments.common import build_network
from repro.sim.tracing import Tracer


class TestAuditorUnit:
    def test_empty_audit(self):
        auditor = AirtimeAuditor(Tracer())
        assert auditor.observed_span_ns == 0
        assert auditor.airtime_share("s1") == 0.0
        assert auditor.busy_fraction() == 0.0

    def test_manual_events(self):
        tracer = Tracer()
        auditor = AirtimeAuditor(tracer)
        tracer.emit(0, "phy.a", "tx_start")
        tracer.emit(400, "phy.a", "tx_end")
        tracer.emit(600, "phy.b", "tx_start")
        tracer.emit(1000, "phy.b", "tx_end")
        assert auditor.observed_span_ns == 1000
        assert auditor.airtime_share("a") == pytest.approx(0.4)
        assert auditor.airtime_share("b") == pytest.approx(0.4)
        assert auditor.busy_fraction() == pytest.approx(0.8)

    def test_report_lists_stations(self):
        tracer = Tracer()
        auditor = AirtimeAuditor(tracer)
        tracer.emit(0, "phy.n1", "tx_start")
        tracer.emit(100, "phy.n1", "tx_end")
        assert "n1" in auditor.report()


class TestAuditorOnSimulation:
    def test_saturated_pair_airtime(self):
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        auditor = AirtimeAuditor(net.tracer)
        UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(2.0)
        sender_share = auditor.airtime_share("n1")
        receiver_share = auditor.airtime_share("n2")
        # Per Equation (1): DATA is ~721 us of a ~1290 us cycle (~0.56 of
        # the channel once DIFS/backoff idle time is included); the ACKs
        # are ~248/1290 (~0.19).
        assert sender_share == pytest.approx(0.56, abs=0.06)
        assert receiver_share == pytest.approx(0.19, abs=0.04)
        assert auditor.busy_fraction() < 1.0

    def test_four_node_asymmetry_mechanism(self):
        """S3 occupies the channel while S1 burns airtime on retries."""
        from repro.channel.placement import figure6_placement

        placement = figure6_placement()
        net = build_network(
            [x for x, _ in placement.positions], data_rate=Rate.MBPS_11
        )
        auditor = AirtimeAuditor(net.tracer)
        for index, (tx, rx) in enumerate(((0, 1), (2, 3))):
            port = 5001 + index
            UdpSink(net[rx], port=port)
            CbrSource(net[tx], dst=rx + 1, dst_port=port, payload_bytes=512)
        net.run(4.0)
        # The winning sender S3 holds a large share of the air...
        assert auditor.airtime_share("n3") > 0.4
        # ...while S1 still transmits plenty (its retries) — the
        # asymmetry is in *useful* deliveries, not in raw airtime.
        assert auditor.airtime_share("n1") > 0.15
        # The channel runs near-continuously busy, with overlapping
        # transmissions (S1 and S3 are decoupled carriers).
        assert auditor.busy_fraction() > 0.85
