"""Fault models + schedule: windows, validation, effect on delivery."""

import pytest

from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.errors import FaultError
from repro.experiments.common import build_network
from repro.faults import (
    ClockJitter,
    FaultSchedule,
    InterferenceBurst,
    LinkFade,
    NodeCrash,
    link_blackout,
)


def quiet_link(seed=1):
    """Two stations 10 m apart, fade-free: every frame normally delivers."""
    return build_network(
        [0, 10], data_rate=Rate.MBPS_11, seed=seed, fast_sigma_db=0.0
    )


def offered_flow(net, rate_bps=400_000):
    sink = UdpSink(net[1], port=5001)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512,
              rate_bps=rate_bps)
    return sink


def packets_in_window(sink, start_s, end_s):
    lo = round(start_s * 1e9)
    hi = round(end_s * 1e9)
    return sum(1 for t in sink.rx_times_ns if lo <= t < hi)


class TestLinkFade:
    def test_blackout_kills_delivery_then_restores_it(self):
        net = quiet_link()
        sink = offered_flow(net)
        FaultSchedule([link_blackout(1.0, 1.0, node_a=0, node_b=1)]).install(net)
        net.run(3.0)
        # Leave guard bands around the edges: frames queued at the MAC
        # when the fade lifts drain late, and a frame in flight at 1.0s
        # is lost but was sent before.
        assert packets_in_window(sink, 0.1, 0.9) > 50
        assert packets_in_window(sink, 1.1, 1.9) == 0
        assert packets_in_window(sink, 2.1, 2.9) > 50

    def test_mild_fade_is_lossy_not_dead(self):
        # The calibrated 10 m / 11 Mbps link has ~17 dB of margin; a
        # 16 dB fade plus per-frame fading puts it right at the edge:
        # the MAC works hard (retries) but traffic still gets through.
        net = build_network(
            [0, 10], data_rate=Rate.MBPS_11, seed=3, fast_sigma_db=6.0
        )
        sink = offered_flow(net)
        FaultSchedule(
            [LinkFade(start_s=0.0, duration_s=None, extra_loss_db=16.0)]
        ).install(net)
        net.run(1.0)
        assert sink.packets > 50
        assert net[0].mac.counters.retries > 20

    def test_unidirectional_fade_leaves_reverse_path_alive(self):
        net = quiet_link()
        forward = offered_flow(net)  # node 0 -> node 1
        reverse = UdpSink(net[0], port=5002)
        CbrSource(net[1], dst=1, dst_port=5002, payload_bytes=512,
                  rate_bps=400_000)
        FaultSchedule(
            [
                LinkFade(
                    start_s=0.0,
                    duration_s=None,
                    node_a=0,
                    node_b=1,
                    bidirectional=False,
                )
            ]
        ).install(net)
        net.run(1.0)
        assert forward.packets == 0
        # Reverse-path data still arrives, but its ACKs (node 0 ->
        # node 1) are swallowed by the one-way fade, so node 1 retries
        # every frame to the limit — the classic asymmetric link the
        # paper measured.  Duplicates are filtered, delivery is slow
        # but alive.
        assert reverse.packets > 10
        assert net[1].mac.counters.retries > 50

    def test_same_node_pair_rejected(self):
        with pytest.raises(FaultError, match="distinct"):
            LinkFade(start_s=0.0, duration_s=1.0, node_a=1, node_b=1)

    def test_node_index_validated_against_network(self):
        net = quiet_link()
        schedule = FaultSchedule([link_blackout(1.0, 1.0, node_a=0, node_b=7)])
        with pytest.raises(FaultError, match="7"):
            schedule.install(net)


class TestInterferenceBurst:
    def test_strong_burst_blocks_reception(self):
        net = quiet_link()
        sink = offered_flow(net)
        FaultSchedule(
            [
                InterferenceBurst(
                    start_s=1.0, duration_s=1.0, nodes=(1,),
                    noise_rise_db=80.0,
                )
            ]
        ).install(net)
        net.run(3.0)
        assert packets_in_window(sink, 0.1, 0.9) > 50
        assert packets_in_window(sink, 1.1, 1.9) == 0
        assert packets_in_window(sink, 2.1, 2.9) > 50

    def test_noise_rise_reverts_cleanly(self):
        net = quiet_link()
        FaultSchedule(
            [InterferenceBurst(start_s=0.5, duration_s=0.5, nodes=(1,))]
        ).install(net)
        net.run(0.7)
        assert net[1].phy.noise_rise_db == 30.0
        net.run(1.2)
        assert net[1].phy.noise_rise_db == 0.0

    def test_overlapping_bursts_on_shared_node_rejected(self):
        net = quiet_link()
        schedule = FaultSchedule(
            [
                InterferenceBurst(start_s=0.0, duration_s=2.0, nodes=(0,)),
                InterferenceBurst(start_s=1.0, duration_s=2.0, nodes=(0, 1)),
            ]
        )
        with pytest.raises(FaultError, match="overlapping"):
            schedule.install(net)

    def test_disjoint_bursts_allowed(self):
        net = quiet_link()
        FaultSchedule(
            [
                InterferenceBurst(start_s=0.0, duration_s=1.0, nodes=(0,)),
                InterferenceBurst(start_s=1.5, duration_s=1.0, nodes=(0,)),
                InterferenceBurst(start_s=0.0, duration_s=3.0, nodes=(1,)),
            ]
        ).install(net)


class TestClockJitter:
    def test_jitter_changes_the_trace_deterministically(self):
        def one_run(sigma_ns):
            net = quiet_link(seed=5)
            sink = offered_flow(net)
            if sigma_ns:
                FaultSchedule(
                    [
                        ClockJitter(
                            start_s=0.0, duration_s=None, node=0,
                            sigma_ns=sigma_ns,
                        )
                    ]
                ).install(net)
            net.run(1.0)
            return list(sink.rx_times_ns)

        clean = one_run(0)
        jittered = one_run(5000.0)
        assert jittered == one_run(5000.0)  # seeded: reproducible
        assert jittered != clean  # but the timers really moved
        assert len(jittered) == pytest.approx(len(clean), rel=0.1)

    def test_sigma_validated(self):
        with pytest.raises(FaultError, match="sigma"):
            ClockJitter(start_s=0.0, duration_s=1.0, sigma_ns=0.0)


class TestFaultWindows:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultError, match="start"):
            NodeCrash(start_s=-1.0, duration_s=1.0)

    def test_zero_or_infinite_duration_rejected(self):
        with pytest.raises(FaultError, match="duration"):
            NodeCrash(start_s=0.0, duration_s=0.0)
        with pytest.raises(FaultError, match="duration"):
            NodeCrash(start_s=0.0, duration_s=float("inf"))

    def test_permanent_fault_has_no_end(self):
        fault = NodeCrash(start_s=2.0, duration_s=None)
        assert fault.end_s is None
        assert "permanent" in fault.describe()

    def test_describe_orders_by_start_time(self):
        schedule = FaultSchedule(
            [
                NodeCrash(start_s=5.0, duration_s=1.0),
                link_blackout(1.0, 1.0, node_a=0, node_b=1),
            ]
        )
        lines = schedule.describe().splitlines()
        assert lines[0].startswith("linkfade")
        assert lines[1].startswith("nodecrash")


class TestSchedule:
    def test_add_after_install_rejected(self):
        net = quiet_link()
        schedule = FaultSchedule([NodeCrash(start_s=1.0, duration_s=1.0)])
        schedule.install(net)
        with pytest.raises(FaultError, match="installed"):
            schedule.add(NodeCrash(start_s=2.0, duration_s=1.0))

    def test_double_install_rejected(self):
        schedule = FaultSchedule([NodeCrash(start_s=1.0, duration_s=1.0)])
        schedule.install(quiet_link())
        with pytest.raises(FaultError, match="already installed"):
            schedule.install(quiet_link())

    def test_non_fault_rejected(self):
        with pytest.raises(FaultError, match="expected a Fault"):
            FaultSchedule(["not a fault"])

    def test_start_in_the_past_rejected(self):
        net = quiet_link()
        net.run(2.0)
        schedule = FaultSchedule([NodeCrash(start_s=1.0, duration_s=1.0)])
        with pytest.raises(FaultError, match="before the current"):
            schedule.install(net)

    def test_transitions_are_traced(self):
        net = quiet_link()
        events = []
        net.tracer.subscribe(lambda r: events.append((r.event, r.fields)),
                             prefix="fault")
        FaultSchedule([link_blackout(0.5, 1.0, node_a=0, node_b=1)]).install(net)
        net.run(2.0)
        assert events == [
            ("apply", {"kind": "linkfade"}),
            ("revert", {"kind": "linkfade"}),
        ]

    def test_cancel_stops_future_transitions(self):
        net = quiet_link()
        sink = offered_flow(net)
        schedule = FaultSchedule(
            [link_blackout(1.0, 1.0, node_a=0, node_b=1)]
        )
        schedule.install(net)
        schedule.cancel()
        net.run(2.0)
        # The blackout never applied: delivery continues throughout.
        assert packets_in_window(sink, 1.1, 1.9) > 50
