"""Shared fixtures: keep the sweep cache out of the user's real $HOME."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the default sweep-cache root at a per-test directory.

    The CLI caches sweep results by default; without this, test runs
    would read and write ``~/.cache/repro-sweeps``.
    """
    monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "sweep-cache"))
