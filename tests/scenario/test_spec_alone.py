"""A new scenario is expressible and runnable from a spec file alone.

Uses the repo's shipped ``examples/exposed_terminal.json`` — no
experiment module, no Python wiring — through both the library API and
the ``repro80211 spec`` CLI command.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.scenario import ScenarioSpec, apply_overrides, build

SPEC_PATH = (
    Path(__file__).resolve().parents[2] / "examples" / "exposed_terminal.json"
)


def _load() -> ScenarioSpec:
    return ScenarioSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))


def test_example_spec_builds_and_runs():
    spec = _load()
    net = build(spec)
    net.run(spec.duration_s)
    throughputs = [f.throughput_bps(spec.duration_s) for f in net.flows]
    assert len(throughputs) == 2
    # Both senders deliver; the nearer one wins most of the air time.
    assert all(t > 0 for t in throughputs)
    assert throughputs[0] > throughputs[1]


def test_example_spec_is_deterministic_across_rebuilds():
    spec = _load()
    digests = []
    for _ in range(2):
        net = build(ScenarioSpec.from_json(spec.to_json()))
        net.run(spec.duration_s)
        digests.append(json.dumps(net.tracer.counters(), sort_keys=True))
    assert digests[0] == digests[1]


def test_cli_spec_command_runs_the_file(capsys):
    assert main(["spec", str(SPEC_PATH), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "exposed-terminal" in out
    assert "1->2" in out and "3->2" in out


def test_cli_spec_command_applies_overrides(capsys):
    assert (
        main(
            [
                "spec",
                str(SPEC_PATH),
                "--no-cache",
                "--set",
                "duration_s=1.0",
                "--set",
                "stack.rts_enabled=true",
            ]
        )
        == 0
    )
    assert "1->2" in capsys.readouterr().out


def test_cli_spec_command_rejects_unknown_override(capsys):
    assert (
        main(
            ["spec", str(SPEC_PATH), "--no-cache", "--set", "stack.turbo=true"]
        )
        == 1
    )
    err = capsys.readouterr().err
    assert "turbo" in err and "accepted" in err


def test_overrides_reach_the_build():
    spec = apply_overrides(_load(), {"stack.rts_enabled": True, "seed": 9})
    assert spec.stack.rts_enabled is True
    assert spec.seed == 9
    net = build(spec)
    assert net.spec is spec
