"""ScenarioNetwork runtime guards and warmup window accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    FlowSpec,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
)


def _net():
    return build(
        ScenarioSpec(
            topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
            traffic=TrafficSpec(
                flows=(FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512),)
            ),
            seed=1,
            duration_s=1.0,
        )
    )


@pytest.mark.parametrize(
    "duration",
    [0.0, -0.5, float("nan"), float("inf"), -float("inf"), "1.0", None, True],
)
def test_run_rejects_bad_durations(duration):
    with pytest.raises(ConfigurationError):
        _net().run(duration)


def test_run_advances_to_the_horizon():
    net = _net()
    net.run(0.25)
    assert net.sim.now_ns == pytest.approx(0.25e9)


def test_run_with_warmup_returns_measurement_window():
    net = _net()
    window = net.run_with_warmup(1.0, warmup_s=0.25)
    assert window == pytest.approx(0.75)
    assert net.sim.now_ns == pytest.approx(1.0e9)


def test_run_with_warmup_rejects_warmup_at_or_past_duration():
    with pytest.raises(ConfigurationError, match="warmup"):
        _net().run_with_warmup(1.0, warmup_s=1.0)
    with pytest.raises(ConfigurationError, match="warmup"):
        _net().run_with_warmup(1.0, warmup_s=-0.1)


def test_flow_lookup_is_bounds_checked():
    net = _net()
    assert net.flow(0).label == "1->2"
    with pytest.raises(ConfigurationError):
        net.flow(1)


def test_stack_kernel_knob_reaches_the_transceivers():
    # StackSpec.kernel pins the reception kernel per scenario, overriding
    # whatever REPRO_KERNEL says for this build.
    net = build(
        ScenarioSpec(
            topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
            stack=StackSpec(kernel="python"),
            seed=1,
            duration_s=1.0,
        )
    )
    for node in net.nodes:
        assert node.phy._reception.kernel == "python"
