"""Tests for MacParamsSpec and its threading through the builder."""

from __future__ import annotations

import pytest

from repro.core.params import MacParameters
from repro.errors import ConfigurationError
from repro.scenario import (
    FlowSpec,
    MacParamsSpec,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
)


def two_node_spec(stack: StackSpec) -> ScenarioSpec:
    return ScenarioSpec(
        name="mac-params",
        topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
        stack=stack,
        traffic=TrafficSpec(
            flows=(FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512),)
        ),
        seed=1,
        duration_s=0.2,
    )


class TestSpecValidation:
    def test_empty_spec_means_table1_defaults(self):
        spec = MacParamsSpec()
        assert not spec.overrides_timing
        assert spec.to_mac_parameters() == MacParameters()

    def test_round_trips_through_dict(self):
        spec = MacParamsSpec(
            cw_min_slots=64, slot_time_us=9.0, queue_frames=10
        )
        assert MacParamsSpec.from_dict(spec.to_dict()) == spec

    def test_inconsistent_windows_fail_at_construction(self):
        with pytest.raises(ConfigurationError, match="CWmin"):
            MacParamsSpec(cw_min_slots=2048)  # above the default CWmax

    def test_bounds_are_validated(self):
        with pytest.raises(ConfigurationError):
            MacParamsSpec(cw_min_slots=0)
        with pytest.raises(ConfigurationError):
            MacParamsSpec(short_retry_limit=-1)
        with pytest.raises(ConfigurationError):
            MacParamsSpec(slot_time_us=0.0)
        with pytest.raises(ConfigurationError):
            MacParamsSpec(queue_frames=True)

    def test_difs_follows_the_standard_identity(self):
        # DIFS = SIFS + 2 x slot whenever timing moves and DIFS is not
        # pinned explicitly.
        mac = MacParamsSpec(slot_time_us=9.0).to_mac_parameters()
        assert mac.difs_us == pytest.approx(10.0 + 2 * 9.0)
        mac = MacParamsSpec(sifs_us=16.0).to_mac_parameters()
        assert mac.difs_us == pytest.approx(16.0 + 2 * 20.0)

    def test_explicit_difs_wins(self):
        mac = MacParamsSpec(slot_time_us=9.0, difs_us=40.0).to_mac_parameters()
        assert mac.difs_us == 40.0

    def test_untouched_timing_keeps_the_base_difs(self):
        base = MacParameters(difs_us=55.0, sifs_us=10.0)
        assert MacParamsSpec(cw_min_slots=64).to_mac_parameters(base).difs_us == 55.0

    def test_merge_preserves_base_fields(self):
        base = MacParameters(short_retry_limit=3)
        merged = MacParamsSpec(cw_min_slots=64).to_mac_parameters(base)
        assert merged.short_retry_limit == 3
        assert merged.cw_min_slots == 64


class TestStackIntegration:
    def test_legacy_retry_fields_conflict_with_mac_spec(self):
        with pytest.raises(ConfigurationError, match="stack.mac"):
            StackSpec(
                short_retry_limit=3,
                mac=MacParamsSpec(short_retry_limit=5),
            )

    def test_legacy_retry_fields_merge_when_mac_spec_is_silent(self):
        stack = StackSpec(
            short_retry_limit=3, mac=MacParamsSpec(cw_min_slots=64)
        )
        mac = stack.dot11_config().mac
        assert mac.short_retry_limit == 3
        assert mac.cw_min_slots == 64

    def test_default_stack_produces_no_config(self):
        # Critical for golden stability: no overrides -> build() sees
        # exactly what it saw before MacParamsSpec existed.
        assert StackSpec().dot11_config() is None
        assert StackSpec(mac=MacParamsSpec()).dot11_config() is None
        assert StackSpec().to_dict()["mac"] is None

    def test_queue_override_takes_precedence(self):
        stack = StackSpec(mac_queue_frames=50, mac=MacParamsSpec(queue_frames=5))
        assert stack.effective_queue_frames == 5
        assert StackSpec(mac_queue_frames=50).effective_queue_frames == 50

    def test_stack_round_trips_with_mac_spec(self):
        stack = StackSpec(mac=MacParamsSpec(cw_min_slots=64, sifs_us=16.0))
        spec = two_node_spec(stack)
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.stack.mac == stack.mac


class TestBuilderThreading:
    def test_overrides_reach_every_station(self):
        spec = two_node_spec(
            StackSpec(
                mac=MacParamsSpec(
                    cw_min_slots=64, slot_time_us=9.0, queue_frames=7
                )
            )
        )
        net = build(spec)
        for node in net.nodes:
            mac = node.mac.config.dot11.mac
            assert mac.cw_min_slots == 64
            assert mac.slot_time_us == 9.0
            assert mac.difs_us == pytest.approx(10.0 + 2 * 9.0)
            assert node.mac.config.max_queue_frames == 7

    def test_default_build_matches_pre_mac_spec_constants(self):
        net = build(two_node_spec(StackSpec()))
        assert net.nodes[0].mac.config.dot11.mac == MacParameters()

    def test_overrides_change_measured_behaviour(self):
        # A huge CWmin visibly slows a single saturated sender: the
        # override is live in the MAC, not just carried in the spec.
        fast = two_node_spec(StackSpec(mac=MacParamsSpec(cw_min_slots=16)))
        slow = two_node_spec(StackSpec(mac=MacParamsSpec(cw_min_slots=1024)))
        results = []
        for spec in (fast, slow):
            net = build(spec)
            net.run(spec.duration_s)
            results.append(net.flow(0).throughput_bps(spec.duration_s))
        assert results[0] > results[1] * 1.5
