"""Spec validation, serialization and override semantics."""

from __future__ import annotations

import json

import pytest

from repro.channel.weather import DayConditions
from repro.errors import ConfigurationError
from repro.scenario import (
    SPEC_VERSION,
    FaultSpec,
    FlowSpec,
    MobilitySpec,
    ScenarioSpec,
    StackSpec,
    SweepAxis,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
    WeatherSpec,
    apply_overrides,
)


def _base_spec(**kwargs) -> ScenarioSpec:
    defaults = dict(
        topology=TopologySpec.line(0, 10),
        traffic=TrafficSpec(
            flows=(FlowSpec(kind="cbr", src=0, dst=1, payload_bytes=512),)
        ),
        seed=1,
        duration_s=2.0,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# ------------------------------------------------------------ validation


def test_unknown_flow_kind_rejected():
    with pytest.raises(ConfigurationError, match="kind"):
        FlowSpec(kind="carrier-pigeon", src=0, dst=1)


def test_onoff_needs_explicit_rate():
    with pytest.raises(ConfigurationError, match="rate_bps"):
        FlowSpec(kind="onoff", src=0, dst=1)


def test_flow_station_indices_must_exist():
    with pytest.raises(ConfigurationError, match="station"):
        _base_spec(
            traffic=TrafficSpec(flows=(FlowSpec(kind="cbr", src=0, dst=7),))
        )


def test_fault_station_indices_must_exist():
    with pytest.raises(ConfigurationError, match="station"):
        _base_spec(
            faults=(
                FaultSpec(kind="node-crash", start_s=1.0, duration_s=0.5, node=5),
            )
        )


def test_restart_flows_must_reference_flows():
    with pytest.raises(ConfigurationError, match="restarts flow"):
        _base_spec(
            faults=(
                FaultSpec(
                    kind="node-crash",
                    start_s=1.0,
                    duration_s=0.5,
                    node=0,
                    restart_flows=(3,),
                ),
            )
        )


def test_warmup_beyond_duration_rejected():
    with pytest.raises(ConfigurationError, match="warmup_s"):
        _base_spec(warmup_s=3.0)
    # Equal is allowed (a zero-length measurement window is legal).
    assert _base_spec(warmup_s=2.0).warmup_s == 2.0


@pytest.mark.parametrize("duration", [0.0, -1.0, float("nan"), float("inf")])
def test_bad_durations_rejected(duration):
    with pytest.raises(ConfigurationError):
        _base_spec(duration_s=duration)


def test_mobility_node_must_exist():
    with pytest.raises(ConfigurationError, match="mobility"):
        TopologySpec.line(0, 10, mobility=(MobilitySpec(node=9, speed_m_s=1.0),))


def test_unknown_propagation_preset_rejected():
    with pytest.raises(ConfigurationError, match="propagation"):
        TopologySpec.line(0, 10, propagation="string-and-cans")


# --------------------------------------------------------- serialization


def test_round_trip_preserves_equality_and_canonical_form():
    spec = _base_spec(
        topology=TopologySpec.line(
            0,
            40,
            weather=WeatherSpec.from_conditions(DayConditions.bad_day()),
            mobility=(MobilitySpec(node=1, speed_m_s=2.0),),
        ),
        stack=StackSpec(data_rate_mbps=5.5, rts_enabled=True),
        faults=(FaultSpec(kind="link-fade", start_s=0.5, extra_loss_db=20.0),),
    )
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.canonical_json() == spec.canonical_json()


def test_to_dict_is_versioned_and_json_clean():
    doc = _base_spec().to_dict()
    assert doc["version"] == SPEC_VERSION
    json.dumps(doc)  # must be pure JSON primitives


def test_from_dict_rejects_unknown_keys():
    doc = _base_spec().to_dict()
    doc["stack"]["qos_enabled"] = True
    with pytest.raises(ConfigurationError, match="qos_enabled"):
        ScenarioSpec.from_dict(doc)


def test_from_dict_rejects_future_version():
    doc = _base_spec().to_dict()
    doc["version"] = SPEC_VERSION + 1
    with pytest.raises(ConfigurationError, match="version"):
        ScenarioSpec.from_dict(doc)


def test_canonical_json_is_key_order_independent():
    spec = _base_spec()
    doc = spec.to_dict()
    shuffled = json.loads(
        json.dumps(doc, sort_keys=True)[::-1][::-1]  # same content
    )
    assert ScenarioSpec.from_dict(shuffled).canonical_json() == spec.canonical_json()


# -------------------------------------------------------------- overrides


def test_apply_overrides_sets_nested_keys():
    spec = _base_spec()
    updated = apply_overrides(
        spec,
        {
            "seed": 9,
            "stack.rts_enabled": True,
            "traffic.flows.0.payload_bytes": 1024,
        },
    )
    assert updated.seed == 9
    assert updated.stack.rts_enabled is True
    assert updated.traffic.flows[0].payload_bytes == 1024
    # Original untouched (specs are frozen values).
    assert spec.seed == 1


def test_apply_overrides_rejects_unknown_key():
    with pytest.raises(ConfigurationError, match="stack.turbo"):
        apply_overrides(_base_spec(), {"stack.turbo": True})


def test_apply_overrides_rejects_bad_list_index():
    with pytest.raises(ConfigurationError):
        apply_overrides(_base_spec(), {"traffic.flows.5.payload_bytes": 64})


def test_apply_overrides_revalidates():
    with pytest.raises(ConfigurationError):
        apply_overrides(_base_spec(), {"duration_s": -1.0})


# ------------------------------------------------------------------ sweep


def test_sweep_expand_orders_first_axis_slowest():
    sweep = SweepSpec(
        base=_base_spec(),
        axes=(
            SweepAxis(key="seed", values=(1, 2)),
            SweepAxis(key="stack.rts_enabled", values=(False, True)),
        ),
    )
    expanded = sweep.expand()
    assert [(s.seed, s.stack.rts_enabled) for s in expanded] == [
        (1, False),
        (1, True),
        (2, False),
        (2, True),
    ]


def test_sweep_round_trips():
    sweep = SweepSpec(
        base=_base_spec(), axes=(SweepAxis(key="seed", values=(1, 2, 3)),)
    )
    restored = SweepSpec.from_dict(sweep.to_dict())
    assert [s.canonical_json() for s in restored.expand()] == [
        s.canonical_json() for s in sweep.expand()
    ]


def test_stack_kernel_knob_round_trips():
    spec = ScenarioSpec(
        topology=TopologySpec(positions_m=((0.0, 0.0), (10.0, 0.0))),
        stack=StackSpec(kernel="python"),
    )
    assert spec.stack.kernel == "python"
    clone = ScenarioSpec.from_dict(spec.to_dict())
    assert clone.stack.kernel == "python"
    assert clone == spec
    # Default stays "follow the environment".
    assert StackSpec().kernel is None


def test_stack_kernel_knob_rejects_unknown_name():
    with pytest.raises(ConfigurationError, match="kernel"):
        StackSpec(kernel="fortran")
