"""Property-based guarantees for the scenario serialisation layer.

Hypothesis generates arbitrary *valid* scenario specs and checks the
contracts the sweep cache and the spec files depend on:

* ``ScenarioSpec.from_json(spec.to_json()) == spec`` (lossless
  round-trip),
* canonical serialisation is a fixed point — round-tripping never
  changes the bytes, so re-serialising can never miss the cache,
* semantically equal specs (ints vs floats, reordered JSON keys)
  produce the same canonical bytes and hence the same sweep-cache key.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.parallel.cache import canonical_params  # noqa: E402
from repro.scenario import (  # noqa: E402
    FaultSpec,
    FlowSpec,
    MobilitySpec,
    ObservabilitySpec,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    WeatherSpec,
)
from repro.scenario.points import scenario_sweep_points  # noqa: E402

# ------------------------------------------------------------ strategies

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
positive = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-3, max_value=1e6
)
sigma = st.floats(allow_nan=False, allow_infinity=False, min_value=0, max_value=20)

weather = st.builds(
    WeatherSpec,
    name=st.sampled_from(["clear", "rain", "fog"]),
    offset_db=st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-30, max_value=30),
    sigma_db=sigma,
    correlation_time_s=positive,
)


def topologies(max_stations: int = 5):
    return st.builds(
        lambda xs, fast, static, w, prop: TopologySpec(
            positions_m=tuple((x, 0.0) for x in xs),
            fast_sigma_db=fast,
            static_sigma_db=static,
            weather=w,
            propagation=prop,
        ),
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=0, max_value=1000),
            min_size=2,
            max_size=max_stations,
        ),
        sigma,
        sigma,
        st.none() | weather,
        st.sampled_from([None, "log-distance", "free-space", "two-ray"]),
    )


stacks = st.builds(
    StackSpec,
    data_rate_mbps=st.sampled_from([1.0, 2.0, 5.5, 11.0]),
    rts_enabled=st.booleans(),
    ack_policy=st.sampled_from(["always", "defer-if-busy"]),
    radio=st.sampled_from([None, "calibrated", "ns2"]),
    short_retry_limit=st.none() | st.integers(min_value=0, max_value=10),
    long_retry_limit=st.none() | st.integers(min_value=0, max_value=10),
    mac_queue_frames=st.integers(min_value=1, max_value=500),
    arf=st.booleans(),
)


def flows(stations: int):
    endpoints = st.lists(
        st.integers(min_value=0, max_value=stations - 1),
        min_size=2, max_size=2, unique=True,
    )
    return st.one_of(
        st.builds(
            lambda ends, port, payload, rate: FlowSpec(
                kind="cbr", src=ends[0], dst=ends[1], port=port,
                payload_bytes=payload, rate_bps=rate,
            ),
            endpoints,
            st.integers(min_value=1, max_value=65535),
            st.integers(min_value=1, max_value=2000),
            st.none() | positive,
        ),
        st.builds(
            lambda ends, rate, on_s, off_s: FlowSpec(
                kind="onoff", src=ends[0], dst=ends[1],
                rate_bps=rate, mean_on_s=on_s, mean_off_s=off_s,
            ),
            endpoints,
            positive,
            positive,
            positive,
        ),
        st.builds(
            lambda ends, total: FlowSpec(
                kind="bulk-tcp", src=ends[0], dst=ends[1], total_bytes=total,
            ),
            endpoints,
            st.none() | st.integers(min_value=1, max_value=10**7),
        ),
    )


def faults(stations: int, n_flows: int):
    restartable = (
        st.lists(
            st.integers(min_value=0, max_value=n_flows - 1), max_size=n_flows
        )
        if n_flows
        else st.just([])
    )
    crash = st.builds(
        lambda start, dur, node, restarts: FaultSpec(
            kind="node-crash", start_s=start, duration_s=dur, node=node,
            restart_flows=tuple(sorted(set(restarts))),
        ),
        positive,
        st.none() | positive,
        st.integers(min_value=0, max_value=stations - 1),
        restartable,
    )
    blackout = st.builds(
        lambda start, dur, ends, bidir: FaultSpec(
            kind="link-blackout", start_s=start, duration_s=dur,
            node_a=ends[0], node_b=ends[1], bidirectional=bidir,
        ),
        positive,
        st.none() | positive,
        st.lists(
            st.integers(min_value=0, max_value=stations - 1),
            min_size=2, max_size=2, unique=True,
        ),
        st.booleans(),
    )
    jitter = st.builds(
        lambda start, dur, node, s: FaultSpec(
            kind="clock-jitter", start_s=start, duration_s=dur, node=node,
            sigma_ns=s,
        ),
        positive,
        st.none() | positive,
        st.integers(min_value=0, max_value=stations - 1),
        positive,
    )
    return st.one_of(crash, blackout, jitter)


observability = st.builds(
    ObservabilitySpec,
    audit=st.booleans(),
    trace_digest=st.booleans(),
    trace_jsonl=st.none() | st.just("trace.jsonl"),
    ledger_jsonl=st.none() | st.just("ledger.jsonl"),
)


@st.composite
def scenario_specs(draw):
    topology = draw(topologies())
    stations = len(topology.positions_m)
    flow_list = tuple(draw(st.lists(flows(stations), max_size=3)))
    fault_list = tuple(
        draw(st.lists(faults(stations, len(flow_list)), max_size=2))
    )
    duration = draw(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=0.1, max_value=600))
    warmup = draw(
        st.just(0.0)
        | st.floats(allow_nan=False, allow_infinity=False,
                    min_value=0, max_value=duration)
    )
    return ScenarioSpec(
        name=draw(st.sampled_from(["scenario", "prop", "figure-x"])),
        topology=topology,
        stack=draw(stacks),
        traffic=TrafficSpec(flows=flow_list),
        faults=fault_list,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        duration_s=duration,
        warmup_s=min(warmup, duration),
        observability=draw(observability),
    )


# ------------------------------------------------------------ properties


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_json_round_trip_is_lossless(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_canonical_serialisation_is_a_fixed_point(spec):
    canonical = spec.canonical_json()
    restored = ScenarioSpec.from_json(canonical)
    assert restored.canonical_json() == canonical
    # And serialising the same spec twice is trivially stable.
    assert spec.canonical_json() == canonical


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_key_order_never_changes_the_spec(spec):
    # A hand-edited spec file with reordered keys is the same scenario.
    doc = json.loads(spec.to_json())
    reordered = dict(reversed(list(doc.items())))
    restored = ScenarioSpec.from_dict(reordered)
    assert restored == spec
    assert restored.canonical_json() == spec.canonical_json()


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_equal_specs_share_a_sweep_cache_key(spec):
    # The cache keys on canonical_params of the point's parameters; a
    # round-tripped spec must hit the same entry.
    restored = ScenarioSpec.from_json(spec.to_json())
    [point_a] = scenario_sweep_points([spec], extract="m:f")
    [point_b] = scenario_sweep_points([restored], extract="m:f")
    assert canonical_params(point_a.params) == canonical_params(point_b.params)


def test_int_valued_fields_normalise_to_the_float_form():
    # Regression for the cache-key split: int and float spellings of the
    # same scenario must serialise identically.
    a = ScenarioSpec(
        topology=TopologySpec.line(0, 10, fast_sigma_db=0),
        seed=1, duration_s=2, warmup_s=1,
    )
    b = ScenarioSpec(
        topology=TopologySpec.line(0.0, 10.0, fast_sigma_db=0.0),
        seed=1, duration_s=2.0, warmup_s=1.0,
    )
    assert a == b
    assert a.canonical_json() == b.canonical_json()
    [pa] = scenario_sweep_points([a], extract="m:f")
    [pb] = scenario_sweep_points([b], extract="m:f")
    assert canonical_params(pa.params) == canonical_params(pb.params)


# --------------------------------------------------- topology factories

import dataclasses  # noqa: E402
import math  # noqa: E402

spacings = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1.0, max_value=500.0
)

factory_topologies = st.one_of(
    st.builds(
        TopologySpec.chain,
        n=st.integers(min_value=2, max_value=40),
        spacing_m=spacings,
    ),
    st.builds(
        TopologySpec.grid,
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        spacing_m=spacings,
    ),
    st.builds(
        TopologySpec.random,
        n=st.integers(min_value=1, max_value=60),
        spacing_m=spacings,
        seed=st.integers(min_value=0, max_value=2**31),
    ),
)


def _spec_around(topology):
    return ScenarioSpec(name="factory", topology=topology, seed=1, duration_s=1.0)


@settings(max_examples=60, deadline=None)
@given(factory_topologies, st.sampled_from([None, "dense", "spatial"]))
def test_factory_topologies_round_trip_losslessly(topology, medium):
    # Factory-generated positions are computed floats; they must survive
    # JSON bit for bit, with the medium knob along for the ride.
    spec = _spec_around(dataclasses.replace(topology, medium=medium))
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    canonical = spec.canonical_json()
    assert ScenarioSpec.from_json(canonical).canonical_json() == canonical


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    spacings,
    st.integers(min_value=0, max_value=2**31),
)
def test_random_layouts_are_seed_deterministic(n, spacing_m, seed):
    first = TopologySpec.random(n, spacing_m, seed)
    again = TopologySpec.random(n, spacing_m, seed)
    assert first.positions_m == again.positions_m
    side = spacing_m * math.sqrt(n)
    assert all(
        0.0 <= x <= side and 0.0 <= y <= side for x, y in first.positions_m
    )


def test_different_seeds_give_different_random_layouts():
    assert (
        TopologySpec.random(20, 50.0, seed=1).positions_m
        != TopologySpec.random(20, 50.0, seed=2).positions_m
    )


@settings(max_examples=40, deadline=None)
@given(factory_topologies)
def test_factory_specs_share_a_sweep_cache_key(topology):
    spec = _spec_around(topology)
    restored = ScenarioSpec.from_json(spec.to_json())
    [point_a] = scenario_sweep_points([spec], extract="m:f")
    [point_b] = scenario_sweep_points([restored], extract="m:f")
    assert canonical_params(point_a.params) == canonical_params(point_b.params)
