"""Tests reproducing Table 2 of the paper from Equations (1) and (2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.params import ALL_RATES, Rate
from repro.core.throughput_model import (
    RtsCtsOverheadModel,
    ThroughputModel,
    table2,
)
from repro.errors import ConfigurationError

#: Table 2 of the paper, in Mbps: (rate, m, rts_cts) -> throughput.
PAPER_TABLE2 = {
    (Rate.MBPS_11, 512, False): 3.060,
    (Rate.MBPS_11, 512, True): 2.549,
    (Rate.MBPS_11, 1024, False): 4.788,
    (Rate.MBPS_11, 1024, True): 4.139,
    (Rate.MBPS_5_5, 512, False): 2.366,
    (Rate.MBPS_5_5, 512, True): 2.049,
    (Rate.MBPS_5_5, 1024, False): 3.308,
    (Rate.MBPS_5_5, 1024, True): 2.985,
    (Rate.MBPS_2, 512, False): 1.319,
    (Rate.MBPS_2, 512, True): 1.214,
    (Rate.MBPS_2, 1024, False): 1.589,
    (Rate.MBPS_2, 1024, True): 1.511,
    (Rate.MBPS_1, 512, False): 0.758,
    (Rate.MBPS_1, 512, True): 0.738,
    (Rate.MBPS_1, 1024, False): 0.862,
    (Rate.MBPS_1, 1024, True): 0.839,
}


class TestTable2NoRtsCts:
    """Every no-RTS/CTS cell of Table 2 must reproduce to ~1 kbps."""

    @pytest.mark.parametrize(
        "rate,payload",
        [(r, m) for r in ALL_RATES for m in (512, 1024)],
    )
    def test_matches_paper(self, rate, payload):
        model = ThroughputModel()
        expected = PAPER_TABLE2[(rate, payload, False)]
        ours = model.max_throughput_bps(payload, rate, rts_cts=False) / 1e6
        assert ours == pytest.approx(expected, abs=0.0015)


class TestTable2RtsCts:
    """The RTS/CTS column in paper-implied overhead mode.

    The paper's own Table 1 parameters cannot produce its RTS/CTS column
    (see DESIGN.md); the deltas imply a single 248 us control overhead.
    With that interpretation every cell except the 1 Mbps / 512 B outlier
    (a probable typo) reproduces.
    """

    @pytest.mark.parametrize(
        "rate,payload",
        [
            (r, m)
            for r in ALL_RATES
            for m in (512, 1024)
            if not (r is Rate.MBPS_1 and m == 512)
        ],
    )
    def test_matches_paper_with_implied_overhead(self, rate, payload):
        model = ThroughputModel(rts_overhead=RtsCtsOverheadModel.PAPER_IMPLIED)
        expected = PAPER_TABLE2[(rate, payload, True)]
        ours = model.max_throughput_bps(payload, rate, rts_cts=True) / 1e6
        assert ours == pytest.approx(expected, abs=0.006)

    def test_standard_overhead_costs_more_than_paper_implied(self):
        standard = ThroughputModel(rts_overhead=RtsCtsOverheadModel.STANDARD)
        implied = ThroughputModel(rts_overhead=RtsCtsOverheadModel.PAPER_IMPLIED)
        assert standard.max_throughput_bps(
            512, Rate.MBPS_11, True
        ) < implied.max_throughput_bps(512, Rate.MBPS_11, True)


class TestQualitativeShapes:
    """Acceptance criteria from DESIGN.md §4."""

    def test_utilization_below_44_percent_at_11_mbps(self):
        model = ThroughputModel()
        entry = model.entry(1024, Rate.MBPS_11, rts_cts=False)
        assert entry.utilization < 0.44

    def test_throughput_increases_with_payload(self):
        model = ThroughputModel()
        for rate in ALL_RATES:
            assert model.max_throughput_bps(1024, rate) > model.max_throughput_bps(
                512, rate
            )

    def test_rts_cts_always_costs_throughput(self):
        model = ThroughputModel()
        for rate in ALL_RATES:
            for m in (512, 1024):
                assert model.max_throughput_bps(
                    m, rate, rts_cts=True
                ) < model.max_throughput_bps(m, rate, rts_cts=False)

    def test_rate_ordering_preserved(self):
        model = ThroughputModel()
        values = [model.max_throughput_bps(512, rate) for rate in ALL_RATES]
        assert values == sorted(values)

    def test_occupancy_breakdown_sums(self):
        model = ThroughputModel()
        occ = model.occupancy(512, Rate.MBPS_11, rts_cts=True)
        assert occ.total_us == pytest.approx(
            occ.difs_us
            + occ.data_us
            + occ.sifs_total_us
            + occ.ack_us
            + occ.backoff_us
            + occ.rts_us
            + occ.cts_us
        )

    def test_propagation_option_adds_delay(self):
        with_tau = ThroughputModel(include_propagation=True)
        without = ThroughputModel(include_propagation=False)
        assert with_tau.occupancy(512, Rate.MBPS_2, False).total_us == pytest.approx(
            without.occupancy(512, Rate.MBPS_2, False).total_us + 2.0
        )


class TestTable2Generator:
    def test_generates_16_entries(self):
        assert len(table2().entries) == 16

    def test_lookup_finds_cells(self):
        t = table2()
        entry = t.lookup(Rate.MBPS_11, 512, False)
        assert entry.throughput_mbps == pytest.approx(3.060, abs=0.001)

    def test_lookup_raises_on_missing_cell(self):
        t = table2(payload_sizes=(512,))
        with pytest.raises(KeyError):
            t.lookup(Rate.MBPS_11, 9999, False)

    def test_rejects_non_positive_payload(self):
        model = ThroughputModel()
        with pytest.raises(ConfigurationError):
            model.max_throughput_bps(0, Rate.MBPS_11)


class TestThroughputProperties:
    @given(
        payload=st.integers(min_value=1, max_value=2312),
        rate=st.sampled_from(ALL_RATES),
        rts=st.booleans(),
    )
    def test_throughput_bounded_by_data_rate(self, payload, rate, rts):
        model = ThroughputModel()
        assert 0 < model.max_throughput_bps(payload, rate, rts) < rate.bps

    @given(
        payload=st.integers(min_value=1, max_value=2311),
        rate=st.sampled_from(ALL_RATES),
        rts=st.booleans(),
    )
    def test_throughput_monotone_in_payload(self, payload, rate, rts):
        model = ThroughputModel()
        assert model.max_throughput_bps(
            payload + 1, rate, rts
        ) > model.max_throughput_bps(payload, rate, rts)
