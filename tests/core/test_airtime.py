"""Tests for the frame airtime calculator, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.airtime import AirtimeCalculator
from repro.core.params import (
    ALL_RATES,
    Dot11bConfig,
    HeaderRatePolicy,
    PlcpParameters,
    Rate,
)
from repro.errors import ConfigurationError


@pytest.fixture
def calc():
    return AirtimeCalculator()


class TestControlFrames:
    def test_ack_at_2_mbps_is_248_us(self, calc):
        # PLCP (192) + 112 bits / 2 Mbps (56) — the paper's T_ACK.
        assert calc.ack_us() == pytest.approx(248.0)

    def test_rts_at_2_mbps_is_272_us(self, calc):
        assert calc.rts_us() == pytest.approx(272.0)

    def test_cts_at_2_mbps_is_248_us(self, calc):
        assert calc.cts_us() == pytest.approx(248.0)

    def test_control_rate_override(self, calc):
        assert calc.ack_us(Rate.MBPS_1) == pytest.approx(192.0 + 112.0)

    def test_control_at_1_mbps_config(self):
        config = Dot11bConfig(control_rate=Rate.MBPS_1)
        calc = AirtimeCalculator(config)
        assert calc.rts_us() == pytest.approx(192.0 + 160.0)


class TestDataFrames:
    def test_paper_header_rate_at_11_mbps(self, calc):
        # 540-byte MSDU at 11 Mbps: header 272 bits @ 2 Mbps = 136 us,
        # payload 4320 bits @ 11 Mbps, PLCP 192 us.
        frame = calc.data_frame(540, Rate.MBPS_11)
        assert frame.plcp_us == pytest.approx(192.0)
        assert frame.header_us == pytest.approx(136.0)
        assert frame.payload_us == pytest.approx(4320 / 11)

    def test_standard_policy_sends_header_at_data_rate(self):
        config = Dot11bConfig(header_rate_policy=HeaderRatePolicy.DATA_RATE)
        calc = AirtimeCalculator(config)
        frame = calc.data_frame(540, Rate.MBPS_11)
        assert frame.header_us == pytest.approx(272 / 11)

    def test_at_1_mbps_header_goes_at_1_mbps(self, calc):
        frame = calc.data_frame(540, Rate.MBPS_1)
        assert frame.header_us == pytest.approx(272.0)

    def test_total_is_sum_of_parts(self, calc):
        frame = calc.data_frame(100, Rate.MBPS_2)
        assert frame.total_us == pytest.approx(
            frame.plcp_us + frame.header_us + frame.payload_us
        )

    def test_short_plcp_reduces_airtime(self):
        long_calc = AirtimeCalculator(Dot11bConfig(plcp=PlcpParameters.long()))
        short_calc = AirtimeCalculator(Dot11bConfig(plcp=PlcpParameters.short()))
        diff = long_calc.data_frame_us(540, Rate.MBPS_11) - short_calc.data_frame_us(
            540, Rate.MBPS_11
        )
        assert diff == pytest.approx(96.0)

    def test_negative_payload_rejected(self, calc):
        with pytest.raises(ConfigurationError):
            calc.data_frame(-1, Rate.MBPS_2)

    def test_payload_only_us(self, calc):
        assert calc.payload_only_us(512, Rate.MBPS_11) == pytest.approx(4096 / 11)

    def test_payload_only_rejects_negative(self, calc):
        with pytest.raises(ConfigurationError):
            calc.payload_only_us(-5, Rate.MBPS_2)


class TestAirtimeProperties:
    @given(
        payload=st.integers(min_value=0, max_value=2346),
        rate=st.sampled_from(ALL_RATES),
    )
    def test_airtime_positive_and_at_least_plcp(self, payload, rate):
        calc = AirtimeCalculator()
        assert calc.data_frame_us(payload, rate) >= calc.plcp_us()

    @given(
        smaller=st.integers(min_value=0, max_value=1000),
        delta=st.integers(min_value=1, max_value=1000),
        rate=st.sampled_from(ALL_RATES),
    )
    def test_airtime_monotone_in_payload(self, smaller, delta, rate):
        calc = AirtimeCalculator()
        assert calc.data_frame_us(smaller + delta, rate) > calc.data_frame_us(
            smaller, rate
        )

    @given(
        payload=st.integers(min_value=0, max_value=2346),
        slow=st.sampled_from(ALL_RATES),
        fast=st.sampled_from(ALL_RATES),
    )
    def test_airtime_antitone_in_rate(self, payload, slow, fast):
        calc = AirtimeCalculator()
        if slow.mbps >= fast.mbps:
            slow, fast = fast, slow
        if slow is fast:
            return
        assert calc.data_frame_us(payload, fast) <= calc.data_frame_us(payload, slow)

    @given(
        a=st.integers(min_value=0, max_value=1000),
        b=st.integers(min_value=0, max_value=1000),
        rate=st.sampled_from(ALL_RATES),
    )
    def test_payload_airtime_is_linear(self, a, b, rate):
        calc = AirtimeCalculator()
        fixed = calc.data_frame_us(0, rate)
        combined = calc.data_frame_us(a + b, rate)
        separate = calc.data_frame_us(a, rate) + calc.data_frame_us(b, rate) - fixed
        assert combined == pytest.approx(separate)
