"""Tests for analytic range solving and outage probability."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.range_model import (
    interference_range_m,
    loss_probability,
    solve_range_m,
)
from repro.errors import ConfigurationError


def log_distance_loss(exponent=3.5, reference_db=40.2):
    def loss(distance_m: float) -> float:
        return reference_db + 10.0 * exponent * math.log10(max(distance_m, 1e-9))

    return loss


class TestSolveRange:
    def test_inverts_the_path_loss(self):
        loss = log_distance_loss()
        # Received power at d: 15 - loss(d).  Threshold -77 dBm.
        d = solve_range_m(loss, tx_power_dbm=15.0, threshold_dbm=-77.0)
        assert 15.0 - loss(d) == pytest.approx(-77.0, abs=0.01)

    def test_lower_threshold_gives_longer_range(self):
        loss = log_distance_loss()
        near = solve_range_m(loss, 15.0, -77.0)
        far = solve_range_m(loss, 15.0, -98.0)
        assert far > near

    def test_returns_lo_when_link_dead_at_lo(self):
        loss = log_distance_loss()
        assert solve_range_m(loss, -100.0, -50.0, lo_m=1.0) == 1.0

    def test_returns_hi_when_threshold_never_reached(self):
        assert solve_range_m(lambda d: 0.0, 15.0, -90.0, hi_m=500.0) == 500.0

    def test_rejects_bad_bracket(self):
        with pytest.raises(ConfigurationError):
            solve_range_m(lambda d: d, 15.0, -90.0, lo_m=10.0, hi_m=5.0)

    @given(threshold=st.floats(min_value=-100.0, max_value=-40.0))
    def test_solution_within_bracket(self, threshold):
        loss = log_distance_loss()
        d = solve_range_m(loss, 15.0, threshold, lo_m=0.1, hi_m=100_000.0)
        assert 0.1 <= d <= 100_000.0


class TestLossProbability:
    def test_half_at_exact_range(self):
        loss = log_distance_loss()
        d = solve_range_m(loss, 15.0, -77.0)
        p = loss_probability(loss, 15.0, -77.0, d, shadowing_sigma_db=4.0)
        assert p == pytest.approx(0.5, abs=0.01)

    def test_monotone_in_distance(self):
        loss = log_distance_loss()
        probs = [
            loss_probability(loss, 15.0, -77.0, d, shadowing_sigma_db=4.0)
            for d in (10.0, 30.0, 60.0, 120.0)
        ]
        assert probs == sorted(probs)

    def test_zero_sigma_is_hard_threshold(self):
        loss = log_distance_loss()
        d = solve_range_m(loss, 15.0, -77.0)
        assert loss_probability(loss, 15.0, -77.0, d * 0.8, 0.0) == 0.0
        assert loss_probability(loss, 15.0, -77.0, d * 1.2, 0.0) == 1.0

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            loss_probability(log_distance_loss(), 15.0, -77.0, 10.0, -1.0)

    def test_rejects_non_positive_distance(self):
        with pytest.raises(ConfigurationError):
            loss_probability(log_distance_loss(), 15.0, -77.0, 0.0, 4.0)

    @given(
        distance=st.floats(min_value=1.0, max_value=1000.0),
        sigma=st.floats(min_value=0.1, max_value=12.0),
    )
    def test_probability_in_unit_interval(self, distance, sigma):
        p = loss_probability(log_distance_loss(), 15.0, -85.0, distance, sigma)
        assert 0.0 <= p <= 1.0


class TestInterferenceRange:
    def test_grows_with_sender_distance(self):
        loss = log_distance_loss()
        near = interference_range_m(loss, 15.0, 10.0, required_sinr_db=10.0)
        far = interference_range_m(loss, 15.0, 25.0, required_sinr_db=10.0)
        assert far > near

    def test_exceeds_sender_distance_for_positive_sinr(self):
        # With equal powers, an interferer at the sender's own distance
        # yields SINR = 0 dB, so any positive requirement pushes the
        # interference range beyond the sender-receiver distance.
        loss = log_distance_loss()
        d = 25.0
        if_range = interference_range_m(loss, 15.0, d, required_sinr_db=10.0)
        assert if_range > d
