"""Tests for the Figure-1 encapsulation stack."""

import pytest

from repro.core.encapsulation import (
    IP_HEADER_BYTES,
    TransportProtocol,
    encapsulation_report,
    mac_payload_bytes,
    overhead_fraction,
)
from repro.errors import ConfigurationError


class TestMacPayloadBytes:
    def test_udp_adds_28_bytes(self):
        # 8 (UDP) + 20 (IP): the overhead that makes Table 2 reproduce.
        assert mac_payload_bytes(512, TransportProtocol.UDP) == 540

    def test_tcp_adds_40_bytes(self):
        assert mac_payload_bytes(512, TransportProtocol.TCP) == 552

    def test_zero_payload_is_allowed(self):
        # A bare TCP ACK has no application payload.
        assert mac_payload_bytes(0, TransportProtocol.TCP) == 40

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            mac_payload_bytes(-1)


class TestEncapsulationReport:
    def test_reports_all_four_layers(self):
        report = encapsulation_report(512)
        assert [row.layer for row in report] == ["application", "udp", "ip", "mac"]

    def test_totals_nest(self):
        report = encapsulation_report(512, TransportProtocol.TCP)
        totals = [row.total_bytes for row in report]
        assert totals == [512, 532, 552, 586]

    def test_each_layer_wraps_the_previous(self):
        report = encapsulation_report(100)
        for inner, outer in zip(report, report[1:]):
            assert outer.payload_bytes == inner.total_bytes


class TestOverheadFraction:
    def test_fraction_decreases_with_payload(self):
        small = overhead_fraction(64)
        large = overhead_fraction(1024)
        assert small > large

    def test_zero_payload_is_all_overhead(self):
        assert overhead_fraction(0) == 1.0

    def test_ip_header_constant(self):
        assert IP_HEADER_BYTES == 20
