"""Tests for the Table-1 parameter sets."""

import pytest

from repro.core.params import (
    ALL_RATES,
    BASIC_RATE_SET,
    Dot11bConfig,
    HeaderRatePolicy,
    MacParameters,
    PlcpParameters,
    PlcpPreamble,
    Rate,
)
from repro.errors import ConfigurationError


class TestRate:
    def test_the_four_80211b_rates_exist(self):
        assert [r.mbps for r in ALL_RATES] == [1.0, 2.0, 5.5, 11.0]

    def test_bps_matches_mbps(self):
        assert Rate.MBPS_11.bps == 11e6
        assert Rate.MBPS_5_5.bps == 5.5e6

    def test_from_mbps_round_trips(self):
        for rate in ALL_RATES:
            assert Rate.from_mbps(rate.mbps) is rate

    def test_from_mbps_rejects_non_80211b_rate(self):
        with pytest.raises(ConfigurationError):
            Rate.from_mbps(54.0)

    def test_basic_rate_set_is_1_and_2_mbps(self):
        assert BASIC_RATE_SET == (Rate.MBPS_1, Rate.MBPS_2)


class TestPlcpParameters:
    def test_long_plcp_is_192_us(self):
        # Table 1: PHYhdr = 192 bits at 1 Mbps = 192 us (9.6 slots).
        assert PlcpParameters.long().duration_us == pytest.approx(192.0)

    def test_long_plcp_is_9_6_slots(self):
        mac = MacParameters()
        slots = PlcpParameters.long().duration_us / mac.slot_time_us
        assert slots == pytest.approx(9.6)

    def test_short_plcp_is_96_us(self):
        assert PlcpParameters.short().duration_us == pytest.approx(96.0)

    def test_for_preamble_dispatches(self):
        assert PlcpParameters.for_preamble(PlcpPreamble.LONG).duration_us == 192.0
        assert PlcpParameters.for_preamble(PlcpPreamble.SHORT).duration_us == 96.0


class TestMacParameters:
    def test_table1_default_values(self):
        mac = MacParameters()
        assert mac.slot_time_us == 20.0
        assert mac.sifs_us == 10.0
        assert mac.difs_us == 50.0
        assert mac.cw_min_slots == 32
        assert mac.cw_max_slots == 1024
        assert mac.mac_header_bits == 272
        assert mac.ack_bits == 112
        assert mac.propagation_delay_us == 1.0

    def test_difs_is_sifs_plus_two_slots(self):
        mac = MacParameters()
        assert mac.difs_us == mac.sifs_us + 2 * mac.slot_time_us

    def test_mean_initial_backoff_is_15_5_slots(self):
        # This value (310 us) is what reproduces Table 2 exactly.
        assert MacParameters().mean_initial_backoff_us == pytest.approx(310.0)

    def test_eifs_uses_lowest_rate_ack(self):
        mac = MacParameters()
        plcp = PlcpParameters.long()
        # EIFS = SIFS + DIFS + (PLCP + 112 bits @ 1 Mbps) = 10+50+304 = 364.
        assert mac.eifs_us(plcp) == pytest.approx(364.0)

    def test_rejects_inverted_contention_window(self):
        with pytest.raises(ConfigurationError):
            MacParameters(cw_min_slots=64, cw_max_slots=32)

    def test_rejects_difs_smaller_than_sifs(self):
        with pytest.raises(ConfigurationError):
            MacParameters(sifs_us=50.0, difs_us=10.0)


class TestHeaderRatePolicy:
    def test_paper_policy_caps_header_at_2_mbps(self):
        policy = HeaderRatePolicy.PAPER_BASIC_RATE
        assert policy.header_rate(Rate.MBPS_11) is Rate.MBPS_2
        assert policy.header_rate(Rate.MBPS_5_5) is Rate.MBPS_2
        assert policy.header_rate(Rate.MBPS_2) is Rate.MBPS_2
        assert policy.header_rate(Rate.MBPS_1) is Rate.MBPS_1

    def test_data_rate_policy_uses_data_rate(self):
        policy = HeaderRatePolicy.DATA_RATE
        for rate in ALL_RATES:
            assert policy.header_rate(rate) is rate


class TestDot11bConfig:
    def test_default_control_rate_is_2_mbps(self):
        assert Dot11bConfig().control_rate is Rate.MBPS_2

    def test_control_rate_must_be_basic(self):
        with pytest.raises(ConfigurationError):
            Dot11bConfig(control_rate=Rate.MBPS_11)

    def test_control_rate_for_caps_by_data_rate(self):
        config = Dot11bConfig()
        assert config.control_rate_for(Rate.MBPS_1) is Rate.MBPS_1
        assert config.control_rate_for(Rate.MBPS_11) is Rate.MBPS_2
