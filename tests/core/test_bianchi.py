"""Tests for the Bianchi saturation model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bianchi import (
    saturation_throughput_bps,
    solve_fixed_point,
)
from repro.core.params import ALL_RATES, Rate
from repro.core.throughput_model import ThroughputModel
from repro.errors import ConfigurationError


class TestFixedPoint:
    def test_single_station_never_collides(self):
        tau, p = solve_fixed_point(1)
        assert p == 0.0
        # tau = 2 / (W + 1) at p = 0 with W = 32.
        assert tau == pytest.approx(2.0 / 33.0)

    def test_collision_probability_grows_with_population(self):
        ps = [solve_fixed_point(n)[1] for n in (2, 4, 8, 16)]
        assert ps == sorted(ps)

    def test_tau_shrinks_with_population(self):
        taus = [solve_fixed_point(n)[0] for n in (2, 4, 8, 16)]
        assert taus == sorted(taus, reverse=True)

    def test_fixed_point_is_consistent(self):
        for n in (2, 5, 10):
            tau, p = solve_fixed_point(n)
            assert p == pytest.approx(1.0 - (1.0 - tau) ** (n - 1), abs=1e-6)

    def test_invalid_population_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_fixed_point(0)

    @given(n=st.integers(min_value=1, max_value=100))
    def test_probabilities_stay_in_range(self, n):
        tau, p = solve_fixed_point(n)
        assert 0.0 < tau < 1.0
        assert 0.0 <= p < 1.0


class TestSaturationThroughput:
    def test_single_station_matches_equation_1(self):
        """Bianchi at n = 1 degenerates to the paper's Equation (1)."""
        for rate in ALL_RATES:
            bianchi = saturation_throughput_bps(1, 512, rate).throughput_bps
            eq1 = ThroughputModel().max_throughput_bps(512, rate)
            assert bianchi == pytest.approx(eq1, rel=0.001)

    def test_bianchi_shape_rises_then_declines(self):
        values = {
            n: saturation_throughput_bps(n).throughput_bps for n in (1, 2, 4, 16)
        }
        assert values[2] > values[1]  # fewer idle slots
        assert values[16] < values[4]  # collisions start to bite

    def test_throughput_bounded_by_data_rate(self):
        for n in (1, 4, 32):
            result = saturation_throughput_bps(n, 512, Rate.MBPS_11)
            assert 0 < result.throughput_bps < Rate.MBPS_11.bps

    def test_matches_the_simulator(self):
        """The independent analytic model validates the simulator."""
        from repro.apps.cbr import CbrSource
        from repro.apps.sink import UdpSink
        from repro.experiments.common import build_network

        n = 4
        positions = [0.0] + [2.0 + index for index in range(n)]
        net = build_network(positions, data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sinks = []
        for index in range(n):
            port = 5001 + index
            sinks.append(UdpSink(net[0], port=port, warmup_s=0.5))
            CbrSource(net[index + 1], dst=1, dst_port=port, payload_bytes=512)
        net.run(3.0)
        simulated = sum(sink.throughput_bps(3.0) for sink in sinks)
        analytic = saturation_throughput_bps(n).throughput_bps
        assert simulated == pytest.approx(analytic, rel=0.04)
