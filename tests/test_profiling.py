"""Tests for the cProfile harness behind ``repro80211 profile``."""

import pytest

from repro.errors import ExperimentError
from repro.profiling import profile_experiment


class TestProfileExperiment:
    def test_report_contains_profile_sections(self):
        report = profile_experiment("table2", top=10)
        assert report.startswith("profile: table2")
        assert "=== top 10 by cumulative time ===" in report
        assert "=== top 10 by self time ===" in report
        assert "ncalls" in report  # pstats table actually rendered

    def test_unknown_experiment_propagates(self):
        with pytest.raises(ExperimentError, match="figure99"):
            profile_experiment("figure99")
