"""Node crash/reboot: MAC flush, timer cancellation, traffic recovery."""

import pytest

from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.errors import MacError
from repro.experiments.common import build_network


def busy_network(seed=1):
    """A saturated 0 -> 1 UDP flow, so the MAC always has work queued."""
    net = build_network(
        [0, 10], data_rate=Rate.MBPS_11, seed=seed, fast_sigma_db=0.0
    )
    sink = UdpSink(net[1], port=5001)
    CbrSource(
        net[0], dst=2, dst_port=5001, payload_bytes=1000, rate_bps=9e6
    )
    return net, sink


class TestCrash:
    def test_crash_flushes_mac_queue_and_cancels_timers(self):
        net, _ = busy_network()
        net.run(0.5)
        mac = net[0].mac
        assert mac.queue_length > 0  # saturated: backlog guaranteed
        net[0].crash()
        assert not net[0].alive
        assert mac.down
        assert mac.queue_length == 0
        assert not mac.busy
        assert mac.counters.flushed_frames > 0
        for timer in mac._timers():
            assert not timer.running

    def test_enqueue_refused_while_down(self):
        net, _ = busy_network()
        net.run(0.1)
        net[0].crash()
        drops_before = net[0].mac.counters.queue_drops
        assert net[0].mac.enqueue(b"x", dst=2, msdu_bytes=100) is False
        assert net[0].mac.counters.queue_drops == drops_before + 1

    def test_radio_deaf_and_mute_while_down(self):
        net, sink = busy_network()
        net.run(0.5)
        net[0].crash()
        assert not net[0].phy.powered
        with pytest.raises(MacError, match="powered off"):
            # The power check precedes any use of the plan, so a dummy
            # plan is enough to probe the guard.
            net[0].phy.transmit(None, None)
        # A frame already on the air at crash time may still complete;
        # let it land before taking the baseline.
        net.run(0.51)
        received_at_crash = sink.packets
        net.run(1.5)
        # The CBR source keeps offering; nothing leaves the dead station.
        assert sink.packets == received_at_crash

    def test_crash_is_idempotent(self):
        net, _ = busy_network()
        net.run(0.2)
        net[0].crash()
        flushed = net[0].mac.counters.flushed_frames
        net[0].crash()
        assert net[0].mac.counters.flushed_frames == flushed


class TestReboot:
    def test_traffic_resumes_after_reboot(self):
        net, sink = busy_network()
        net.run(0.5)
        net[0].crash()
        net.run(1.0)
        at_reboot = sink.packets
        net[0].reboot()
        assert net[0].alive
        assert not net[0].mac.down
        assert net[0].phy.powered
        net.run(1.5)
        assert sink.packets > at_reboot + 50

    def test_rebooted_mac_starts_from_clean_state(self):
        net, _ = busy_network()
        net.run(0.5)
        net[0].crash()
        net[0].reboot()
        mac = net[0].mac
        assert mac.queue_length == 0
        assert not mac.busy
        for timer in mac._timers():
            assert not timer.running
