"""Tests for packets, routing and the IP layer."""

import random

import pytest

from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.experiments.common import build_network
from repro.net.packet import DEFAULT_TTL, Datagram, PROTO_TCP, PROTO_UDP
from repro.net.routing import (
    StaticRouting,
    build_shortest_path_tables,
    connectivity_graph,
)


class TestDatagram:
    def test_valid_datagram(self):
        d = Datagram(src=1, dst=2, protocol=PROTO_UDP, segment="x", size_bytes=100)
        assert d.size_bytes == 100

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            Datagram(src=1, dst=2, protocol=PROTO_UDP, segment="x", size_bytes=10)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            Datagram(src=1, dst=2, protocol="icmp", segment="x", size_bytes=100)

    def test_protocol_tags(self):
        assert PROTO_UDP == "udp"
        assert PROTO_TCP == "tcp"


class TestStaticRouting:
    def test_default_is_direct_delivery(self):
        routing = StaticRouting(own_address=1)
        assert routing.next_hop(7) == 7

    def test_explicit_route_wins(self):
        routing = StaticRouting(own_address=1)
        routing.add_route(dst=7, next_hop=3)
        assert routing.next_hop(7) == 3
        assert routing.routes() == {7: 3}

    def test_route_to_self_rejected(self):
        routing = StaticRouting(own_address=1)
        with pytest.raises(ConfigurationError):
            routing.add_route(dst=1, next_hop=2)


class TestStaticRoutingStrict:
    def test_install_goes_strict_and_misses_answer_none(self):
        routing = StaticRouting(own_address=1)
        routing.install({3: 2})
        assert routing.next_hop(3) == 2
        assert routing.next_hop(9) is None
        assert routing.default_direct is False

    def test_install_can_keep_the_direct_default(self):
        routing = StaticRouting(own_address=1)
        routing.install({3: 2}, strict=False)
        assert routing.next_hop(9) == 9

    def test_install_rejects_a_route_to_self(self):
        routing = StaticRouting(own_address=1)
        with pytest.raises(ConfigurationError):
            routing.install({1: 2})

    def test_routes_returns_a_copy(self):
        routing = StaticRouting(own_address=1)
        routing.add_route(dst=7, next_hop=3)
        routing.routes()[7] = 99
        assert routing.next_hop(7) == 3


class TestConnectivityGraph:
    def test_chain_adjacency(self):
        positions = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0), (240.0, 0.0)]
        graph = connectivity_graph(positions, max_range_m=100.0)
        assert graph == {1: (2,), 2: (1, 3), 3: (2, 4), 4: (3,)}

    def test_edges_are_symmetric_and_ascending(self):
        rng = random.Random(6)
        positions = [
            (rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)) for _ in range(25)
        ]
        graph = connectivity_graph(positions, max_range_m=150.0)
        for node, neighbours in graph.items():
            assert list(neighbours) == sorted(neighbours)
            for neighbour in neighbours:
                assert node in graph[neighbour]

    def test_non_positive_range_rejected(self):
        with pytest.raises(ConfigurationError):
            connectivity_graph([(0.0, 0.0)], max_range_m=0.0)


class TestShortestPathTables:
    def test_chain_routes_hop_by_hop(self):
        positions = [(index * 80.0, 0.0) for index in range(5)]
        tables = build_shortest_path_tables(positions, max_range_m=100.0)
        assert tables[1][5] == 2
        assert tables[2][5] == 3
        assert tables[4][5] == 5
        assert tables[5][1] == 4

    def test_equal_hop_ties_break_toward_the_lowest_address(self):
        # A 2x2 square: corner 1 reaches corner 4 in two hops via either
        # 2 or 3; the ascending neighbour order makes 2 win, always.
        positions = [(0.0, 0.0), (80.0, 0.0), (0.0, 80.0), (80.0, 80.0)]
        tables = build_shortest_path_tables(positions, max_range_m=100.0)
        assert tables[1][4] == 2
        assert tables[4][1] == 2

    def test_unreachable_destinations_are_absent(self):
        positions = [(0.0, 0.0), (80.0, 0.0), (5000.0, 0.0)]
        tables = build_shortest_path_tables(positions, max_range_m=100.0)
        assert tables[1] == {2: 2}
        assert 3 not in tables[2]
        assert tables[3] == {}


class TestMultihopForwarding:
    def test_chain_delivers_over_four_hops(self):
        net = build_network(
            [0.0, 80.0, 160.0, 240.0, 320.0],
            data_rate=Rate.MBPS_2,
            fast_sigma_db=0.0,
            routing="shortest-path",
        )
        received = []
        sink = net[4].udp.bind(5001)
        sink.on_receive(
            lambda payload, payload_bytes, src, src_port: received.append(
                (payload, src)
            )
        )
        socket = net[0].udp.bind()
        assert socket.send("hop-by-hop", 100, dst=5, dst_port=5001)
        net.run(0.1)
        assert received == [("hop-by-hop", 1)]
        assert net[4].ip.datagrams_delivered == 1
        for hop in (1, 2, 3):
            assert net[hop].ip.datagrams_forwarded == 1

    def test_routing_loop_dies_with_a_typed_ttl_expiry(self):
        # Nodes 1 and 2 bounce traffic for the unreachable node 3 at
        # each other; the TTL turns the orbit into one terminal drop.
        net = build_network([0.0, 10.0, 5000.0], fast_sigma_db=0.0)
        net[0].routing.add_route(dst=3, next_hop=2)
        net[1].routing.add_route(dst=3, next_hop=1)
        assert net[0].ip.send("seg", 100, dst=3, protocol=PROTO_UDP)
        net.run(1.0)
        expired = net[0].ip.datagrams_ttl_expired + net[1].ip.datagrams_ttl_expired
        forwarded = net[0].ip.datagrams_forwarded + net[1].ip.datagrams_forwarded
        assert expired == 1
        assert forwarded == DEFAULT_TTL - 1

    def test_strict_table_miss_is_a_typed_no_route_drop(self):
        net = build_network(
            [0.0, 5000.0], fast_sigma_db=0.0, routing="shortest-path"
        )
        assert net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP) is False
        assert net[0].ip.datagrams_no_route == 1
        assert net[0].ip.send_failures == 1

    def test_unknown_routing_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            build_network([0.0, 10.0], routing="ospf")


class TestIpLayer:
    def test_send_counts(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        assert net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP)
        assert net[0].ip.datagrams_sent == 1

    def test_delivery_dispatches_to_registered_protocol(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        seen = []
        net[1].ip.register_protocol("raw", lambda seg, src: seen.append((seg, src)))

        # Patch a datagram with the custom protocol through the MAC
        # directly (IP validates protocols on send).
        from repro.net.packet import Datagram

        datagram = Datagram.__new__(Datagram)
        object.__setattr__(datagram, "src", 1)
        object.__setattr__(datagram, "dst", 2)
        object.__setattr__(datagram, "protocol", "raw")
        object.__setattr__(datagram, "segment", "hello")
        object.__setattr__(datagram, "size_bytes", 100)
        net[0].mac.enqueue(datagram, 2, 100)
        net.run(0.1)
        assert seen == [("hello", 1)]

    def test_duplicate_protocol_registration_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            net[0].ip.register_protocol(PROTO_UDP, lambda s, a: None)

    def test_queue_overflow_reports_send_failure(self):
        net = build_network([0, 10], fast_sigma_db=0.0, mac_queue_frames=1)
        results = [
            net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP) for _ in range(5)
        ]
        assert False in results
        assert net[0].ip.send_failures > 0

    def test_ip_header_added_to_mac_payload(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        captured = []
        original = net[0].mac.enqueue

        def spy(msdu, dst, msdu_bytes):
            captured.append(msdu_bytes)
            return original(msdu, dst, msdu_bytes)

        net[0].mac.enqueue = spy
        net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP)
        assert captured == [120]


class TestNode:
    def test_node_composition(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        node = net[0]
        assert node.address == 1
        assert node.position_m == (0.0, 0.0)
        assert node.ip.address == 1
        assert node.mac.address == 1
        assert "Node(1" in repr(node)
