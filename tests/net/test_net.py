"""Tests for packets, routing and the IP layer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import build_network
from repro.net.packet import Datagram, PROTO_TCP, PROTO_UDP
from repro.net.routing import StaticRouting


class TestDatagram:
    def test_valid_datagram(self):
        d = Datagram(src=1, dst=2, protocol=PROTO_UDP, segment="x", size_bytes=100)
        assert d.size_bytes == 100

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            Datagram(src=1, dst=2, protocol=PROTO_UDP, segment="x", size_bytes=10)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            Datagram(src=1, dst=2, protocol="icmp", segment="x", size_bytes=100)

    def test_protocol_tags(self):
        assert PROTO_UDP == "udp"
        assert PROTO_TCP == "tcp"


class TestStaticRouting:
    def test_default_is_direct_delivery(self):
        routing = StaticRouting(own_address=1)
        assert routing.next_hop(7) == 7

    def test_explicit_route_wins(self):
        routing = StaticRouting(own_address=1)
        routing.add_route(dst=7, next_hop=3)
        assert routing.next_hop(7) == 3
        assert routing.routes() == {7: 3}

    def test_route_to_self_rejected(self):
        routing = StaticRouting(own_address=1)
        with pytest.raises(ConfigurationError):
            routing.add_route(dst=1, next_hop=2)


class TestIpLayer:
    def test_send_counts(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        assert net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP)
        assert net[0].ip.datagrams_sent == 1

    def test_delivery_dispatches_to_registered_protocol(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        seen = []
        net[1].ip.register_protocol("raw", lambda seg, src: seen.append((seg, src)))

        # Patch a datagram with the custom protocol through the MAC
        # directly (IP validates protocols on send).
        from repro.net.packet import Datagram

        datagram = Datagram.__new__(Datagram)
        object.__setattr__(datagram, "src", 1)
        object.__setattr__(datagram, "dst", 2)
        object.__setattr__(datagram, "protocol", "raw")
        object.__setattr__(datagram, "segment", "hello")
        object.__setattr__(datagram, "size_bytes", 100)
        net[0].mac.enqueue(datagram, 2, 100)
        net.run(0.1)
        assert seen == [("hello", 1)]

    def test_duplicate_protocol_registration_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            net[0].ip.register_protocol(PROTO_UDP, lambda s, a: None)

    def test_queue_overflow_reports_send_failure(self):
        net = build_network([0, 10], fast_sigma_db=0.0, mac_queue_frames=1)
        results = [
            net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP) for _ in range(5)
        ]
        assert False in results
        assert net[0].ip.send_failures > 0

    def test_ip_header_added_to_mac_payload(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        captured = []
        original = net[0].mac.enqueue

        def spy(msdu, dst, msdu_bytes):
            captured.append(msdu_bytes)
            return original(msdu, dst, msdu_bytes)

        net[0].mac.enqueue = spy
        net[0].ip.send("seg", 100, dst=2, protocol=PROTO_UDP)
        assert captured == [120]


class TestNode:
    def test_node_composition(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        node = net[0]
        assert node.address == 1
        assert node.position_m == (0.0, 0.0)
        assert node.ip.address == 1
        assert node.mac.address == 1
        assert "Node(1" in repr(node)
