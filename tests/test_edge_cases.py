"""Cross-cutting edge cases that don't belong to a single package."""

import pytest

from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.experiments.common import build_network
from repro.sim.engine import Simulator


class TestEngineRobustness:
    def test_exception_in_callback_propagates_but_leaves_engine_usable(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("callback failure")

        fired = []
        sim.schedule(100, boom)
        sim.schedule(200, fired.append, "after")
        with pytest.raises(RuntimeError):
            sim.run()
        # The failed event is consumed; the engine keeps going.
        sim.run()
        assert fired == ["after"]

    def test_clock_never_goes_backwards_across_runs(self):
        sim = Simulator()
        sim.run(until_s=1.0)
        stamps = []
        sim.schedule_s(0.5, lambda: stamps.append(sim.now_s))
        sim.run(until_s=3.0)
        assert stamps == [pytest.approx(1.5)]
        assert sim.now_s == pytest.approx(3.0)


class TestTimestampedDelays:
    def test_sink_records_one_way_delays(self):
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(
            net[0],
            dst=2,
            dst_port=5001,
            payload_bytes=512,
            rate_bps=500_000,
            timestamped=True,
        )
        net.run(1.0)
        assert sink.delays.count > 40
        # One-way delay of an uncontended frame: DIFS + frame + margin,
        # well under 2 ms at 11 Mbps.
        assert 0.0005 < sink.delays.mean_s < 0.002
        # Sequences are still tracked from the tuple payloads.
        assert sink.sequences == sorted(sink.sequences)


class TestMixedTraffic:
    def test_udp_and_tcp_coexist_on_one_link(self):
        from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender

        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001, warmup_s=0.5)
        CbrSource(
            net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=800_000
        )
        receiver = BulkTcpReceiver(net[1], port=80, warmup_s=0.5)
        BulkTcpSender(net[0], dst=2, dst_port=80)
        net.run(3.0)
        udp_mbps = sink.throughput_bps(3.0) / 1e6
        tcp_mbps = receiver.throughput_bps(3.0) / 1e6
        # The rate-limited UDP flow keeps its offered rate; TCP absorbs
        # the rest of the channel.
        assert udp_mbps == pytest.approx(0.8, rel=0.1)
        assert tcp_mbps > 1.0

    def test_station_can_send_and_receive_concurrently(self):
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sink_at_1 = UdpSink(net[0], port=5001, warmup_s=0.2)
        sink_at_2 = UdpSink(net[1], port=5001, warmup_s=0.2)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512,
                  rate_bps=500_000)
        CbrSource(net[1], dst=1, dst_port=5001, payload_bytes=512,
                  rate_bps=500_000)
        net.run(2.0)
        assert sink_at_1.throughput_bps(2.0) == pytest.approx(500_000, rel=0.1)
        assert sink_at_2.throughput_bps(2.0) == pytest.approx(500_000, rel=0.1)


class TestFaultDeterminism:
    def test_same_seed_and_schedule_give_bit_identical_traces(self):
        """Two runs with the same seed + fault schedule must match exactly.

        This is the property that makes the hardened runner's
        retry-with-perturbed-seed meaningful: a *re-run* of the same
        seed reproduces the failure, while a perturbed seed explores a
        genuinely different trajectory.
        """
        from repro.faults import (
            ClockJitter,
            FaultSchedule,
            NodeCrash,
            link_blackout,
        )

        def one_run(seed):
            net = build_network([0, 10], data_rate=Rate.MBPS_11, seed=seed)
            trace = []
            net.tracer.subscribe(lambda record: trace.append(str(record)))
            UdpSink(net[1], port=5001)
            CbrSource(
                net[0], dst=2, dst_port=5001, payload_bytes=512,
                rate_bps=600_000,
            )
            FaultSchedule(
                [
                    link_blackout(0.4, 0.3, node_a=0, node_b=1),
                    NodeCrash(start_s=1.0, duration_s=0.4, node=0),
                    ClockJitter(start_s=0.0, duration_s=None, node=1,
                                sigma_ns=1500.0),
                ]
            ).install(net)
            net.run(2.0)
            return trace

        first = one_run(seed=11)
        second = one_run(seed=11)
        assert len(first) > 500
        assert first == second
        # And a different seed really does diverge.
        assert one_run(seed=12) != first


class TestMediumDeviceKeying:
    """Regression: device keys must not be recycled object ids (PR 3).

    ``Medium`` used to key its attach set and per-pair geometry cache by
    ``id(device)``.  CPython reuses ids the moment an object is
    collected, so a detached-and-collected device could alias a new one
    — passing attach checks it should fail and serving stale base-loss
    entries.  Keys are now per-medium monotonic indices, which makes
    them independent of allocation history altogether.
    """

    class _Probe:
        """Minimal MediumDevice: records the powers it hears."""

        def __init__(self, position_m):
            self.position_m = position_m
            self.rx_powers = []

        def on_signal_start(self, signal, rx_power_dbm):
            self.rx_powers.append(rx_power_dbm)

        def on_signal_end(self, signal):
            pass

    def _run_once(self, channel):
        from repro.channel.medium import Medium
        from repro.sim.engine import Simulator

        sim = Simulator()
        medium = Medium(sim, channel)
        sender = self._Probe((0.0, 0.0))
        receiver = self._Probe((25.0, 0.0))
        medium.attach(sender)
        medium.attach(receiver)
        medium.transmit(sender, "frame", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        return receiver.rx_powers

    def test_sequential_mediums_use_identical_non_id_keys(self):
        import gc
        import random

        from repro.channel.shadowing import ChannelModel

        # One channel model shared by two sequentially created mediums —
        # the sweep-worker shape: scenario B starts after scenario A's
        # objects are garbage.  Static shadowing is drawn once per
        # (tx_key, rx_key); with id()-derived keys the second medium's
        # draw depended on allocation history, with per-medium indices
        # both mediums present the keys (0, 1) and hear bit-identical
        # channels.
        channel = ChannelModel(
            fast_sigma_db=0.0,
            static_sigma_db=6.0,
            rng=random.Random(7),
        )
        first = self._run_once(channel)
        gc.collect()
        second = self._run_once(channel)
        gc.collect()
        third = self._run_once(channel)
        assert len(first) == 1
        assert first == second == third

    def test_attach_checks_survive_gc_churn(self):
        import gc

        from repro.channel.medium import Medium, MediumError
        from repro.channel.shadowing import ChannelModel
        from repro.sim.engine import Simulator

        sim = Simulator()
        medium = Medium(sim, ChannelModel(fast_sigma_db=0.0))
        anchor = self._Probe((0.0, 0.0))
        medium.attach(anchor)
        # Churn through short-lived device objects with collections in
        # between: every fresh device must attach cleanly (an id-keyed
        # set could see a recycled id as "already attached"), and the
        # genuinely attached device must still be rejected.
        for step in range(50):
            probe = self._Probe((float(step + 1), 0.0))
            medium.attach(probe)
            del probe
            gc.collect()
        with pytest.raises(MediumError):
            medium.attach(anchor)
        assert len(medium.devices) == 51


class TestPairCacheMobilityEviction:
    """Regression: a move must evict pair-cache rows, not strand them (PR 9).

    Before the spatial medium landed, a moved device's cached geometry
    was only *overwritten* when its pair transmitted again; rows for
    pairs that stopped being neighbours lingered forever.  A reported
    move (``Medium.notify_moved``, which every supported mover fires via
    the transceiver's position property) now drops every row touching
    the mover, so long mobile runs never accumulate stale geometry.
    """

    class _Probe:
        def __init__(self, position_m):
            self.position_m = position_m

        def on_signal_start(self, signal, rx_power_dbm):
            pass

        def on_signal_end(self, signal):
            pass

    def _make(self, n=18, spacing=40.0, mode="spatial"):
        import random

        from repro.channel.medium import Medium
        from repro.channel.shadowing import ChannelModel
        from repro.sim.engine import Simulator

        sim = Simulator()
        medium = Medium(
            sim, ChannelModel(fast_sigma_db=0.0, rng=random.Random(3)), mode=mode
        )
        probes = [self._Probe((index * spacing, 0.0)) for index in range(n)]
        for probe in probes:
            medium.attach(probe)
        return sim, medium, probes

    def test_notify_moved_evicts_every_row_touching_the_mover(self):
        sim, medium, probes = self._make()
        for probe in probes:
            medium.transmit(probe, "fill", duration_ns=1000, tx_power_dbm=15.0)
        sim.run()
        assert any(0 in key for key in medium._pair_cache)
        probes[0].position_m = (5000.0, 0.0)
        medium.notify_moved(probes[0])
        assert not any(0 in key for key in medium._pair_cache)
        assert 0 not in medium._pair_partners
        assert all(0 not in partners for partners in medium._pair_partners.values())

    def test_cache_stays_bounded_under_position_churn(self):
        sim, medium, probes = self._make()
        mover = probes[0]
        sizes = []
        for round_index in range(40):
            # Oscillate: fresh tuple every round, same two geometries.
            mover.position_m = (1.0 if round_index % 2 else 0.0, 0.0)
            medium.notify_moved(mover)
            medium.transmit(
                mover, f"frame-{round_index}", duration_ns=1000, tx_power_dbm=15.0
            )
            sim.run()
            sizes.append(len(medium._pair_cache))
        # Only the mover transmits, and spatial culls: fewer rows than
        # even its full partner count, and no growth across churn.
        assert max(sizes) < len(probes) - 1
        assert sizes[-1] == sizes[-3]
        assert sizes[-2] == sizes[-4]
