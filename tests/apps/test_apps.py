"""Tests for the traffic generators and sinks."""

import pytest

from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.errors import ConfigurationError
from repro.experiments.common import build_network


class TestCbrSource:
    def test_rate_mode_spacing(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        source = CbrSource(
            net[0], dst=2, dst_port=5001, payload_bytes=500, rate_bps=400_000
        )
        net.run(1.0)
        # 400 kbps at 500 B/packet = 100 packets/s.
        assert source.packets_offered == pytest.approx(100, abs=2)
        assert sink.packets == pytest.approx(100, abs=2)

    def test_saturated_mode_overflows_queue(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        UdpSink(net[1], port=5001)
        source = CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(1.0)
        assert source.packets_offered > source.packets_accepted

    def test_stop_halts_generation(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        UdpSink(net[1], port=5001)
        source = CbrSource(
            net[0], dst=2, dst_port=5001, payload_bytes=500, rate_bps=400_000
        )
        net.sim.schedule_s(0.5, source.stop)
        net.run(2.0)
        assert source.packets_offered == pytest.approx(50, abs=2)

    def test_delayed_start(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(
            net[0],
            dst=2,
            dst_port=5001,
            payload_bytes=500,
            rate_bps=400_000,
            start_s=0.5,
        )
        net.run(1.0)
        assert sink.first_rx_ns >= 500_000_000

    def test_invalid_payload_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=0)

    def test_invalid_rate_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=10, rate_bps=0)


class TestUdpSink:
    def test_throughput_window(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001, warmup_s=0.5)
        CbrSource(
            net[0], dst=2, dst_port=5001, payload_bytes=1000, rate_bps=800_000
        )
        net.run(1.5)
        # 100 packets/s of 1000 B after warm-up for 1 s: ~800 kbps.
        assert sink.throughput_bps(1.5) == pytest.approx(800_000, rel=0.05)

    def test_degenerate_window_is_zero(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001, warmup_s=2.0)
        assert sink.throughput_bps(1.0) == 0.0


class TestBulkApps:
    def test_sender_respects_total_bytes(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=4096)
        net.run(3.0)
        assert receiver.bytes == 4096
        assert sender.finished

    def test_invalid_total_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=0)

    def test_delayed_start(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(
            net[0], dst=2, dst_port=80, total_bytes=1024, start_s=0.5
        )
        net.run(0.4)
        assert sender.connection is None
        net.run(3.0)
        assert receiver.bytes == 1024

    def test_receiver_tracks_connections(self):
        net = build_network([0, 10, 20], fast_sigma_db=0.0)
        receiver = BulkTcpReceiver(net[1], port=80)
        BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=1024)
        BulkTcpSender(net[2], dst=2, dst_port=80, total_bytes=1024)
        net.run(3.0)
        assert len(receiver.connections) == 2
        assert receiver.bytes == 2048
