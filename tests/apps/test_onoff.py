"""Tests for the on/off bursty source."""

import pytest

from repro.apps.onoff import OnOffSource
from repro.apps.sink import UdpSink
from repro.errors import ConfigurationError
from repro.experiments.common import build_network


class TestOnOffSource:
    def test_mean_rate_is_duty_cycled(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        OnOffSource(
            net[0],
            dst=2,
            dst_port=5001,
            payload_bytes=500,
            rate_bps=800_000,
            mean_on_s=0.2,
            mean_off_s=0.2,
        )
        net.run(20.0)
        # 50% duty cycle of 800 kbps: ~400 kbps +- burst variance.
        measured = sink.throughput_bps(20.0)
        assert measured == pytest.approx(400_000, rel=0.35)

    def test_alternates_phases(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        UdpSink(net[1], port=5001)
        source = OnOffSource(
            net[0], dst=2, dst_port=5001, mean_on_s=0.1, mean_off_s=0.1
        )
        net.run(5.0)
        assert source.on_periods > 5

    def test_off_periods_are_silent(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        source = OnOffSource(
            net[0],
            dst=2,
            dst_port=5001,
            rate_bps=1e6,
            mean_on_s=0.05,
            mean_off_s=10.0,  # long silences
        )
        net.run(5.0)
        # Bursts are rare: far fewer packets than a continuous source.
        continuous_estimate = 5.0 * 1e6 / (512 * 8)
        assert sink.packets < continuous_estimate / 5

    def test_stop(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        UdpSink(net[1], port=5001)
        source = OnOffSource(net[0], dst=2, dst_port=5001)
        net.sim.schedule_s(0.5, source.stop)
        net.run(3.0)
        count = source.packets_sent
        net.run(4.0)
        assert source.packets_sent == count

    def test_validation(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        with pytest.raises(ConfigurationError):
            OnOffSource(net[0], dst=2, dst_port=5001, payload_bytes=0)
        with pytest.raises(ConfigurationError):
            OnOffSource(net[0], dst=2, dst_port=5001, mean_on_s=0.0)
