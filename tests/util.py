"""Shared helpers for integration-style tests: small MAC networks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.channel.medium import Medium
from repro.channel.shadowing import ChannelModel
from repro.core.params import Dot11bConfig, Rate
from repro.mac.dcf import AckPolicy, MacConfig, MacStation
from repro.phy.radio import RadioParameters
from repro.phy.transceiver import Transceiver
from repro.sim.engine import Simulator
from repro.sim.rng import RngManager
from repro.sim.tracing import Tracer


@dataclass
class Station:
    """One station of a test network."""

    mac: MacStation
    phy: Transceiver
    received: list[tuple[Any, int]] = field(default_factory=list)
    sent_results: list[tuple[Any, int, bool]] = field(default_factory=list)


@dataclass
class MacNetwork:
    """A simulator plus stations at given positions."""

    sim: Simulator
    medium: Medium
    stations: list[Station]
    tracer: Tracer

    def __getitem__(self, index: int) -> Station:
        return self.stations[index]


def build_mac_network(
    positions_m,
    data_rate: Rate = Rate.MBPS_2,
    rts_enabled: bool = False,
    seed: int = 1,
    fast_sigma_db: float = 0.0,
    radio: RadioParameters | None = None,
    ack_policy: AckPolicy = AckPolicy.ALWAYS,
    dot11: Dot11bConfig | None = None,
    **mac_kwargs,
) -> MacNetwork:
    """Stations with MACs on a deterministic (by default) channel."""
    sim = Simulator()
    rngs = RngManager(seed)
    tracer = Tracer()
    channel = ChannelModel(fast_sigma_db=fast_sigma_db, rng=rngs.stream("channel"))
    medium = Medium(sim, channel)
    if radio is None:
        radio = RadioParameters.calibrated()
    if dot11 is None:
        dot11 = Dot11bConfig()
    stations = []
    for index, x in enumerate(positions_m):
        phy = Transceiver(
            sim,
            medium,
            radio,
            name=f"s{index + 1}",
            position_m=(float(x), 0.0),
            rng=rngs.stream(f"phy{index}"),
            tracer=tracer,
        )
        mac = MacStation(
            sim,
            phy,
            MacConfig(
                address=index + 1,
                data_rate=data_rate,
                dot11=dot11,
                rts_enabled=rts_enabled,
                ack_policy=ack_policy,
                **mac_kwargs,
            ),
            rng=rngs.stream(f"mac{index}"),
            tracer=tracer,
        )
        station = Station(mac=mac, phy=phy)
        mac.set_receive_callback(
            lambda msdu, src, s=station: s.received.append((msdu, src))
        )
        mac.set_sent_callback(
            lambda msdu, dst, ok, s=station: s.sent_results.append((msdu, dst, ok))
        )
        stations.append(station)
    return MacNetwork(sim=sim, medium=medium, stations=stations, tracer=tracer)


def saturate(network: MacNetwork, sender: int, receiver: int, msdu_bytes: int) -> None:
    """Keep the sender's MAC queue topped up for the whole run."""
    station = network[sender]
    dst = network[receiver].mac.address

    def refill(msdu, _dst, _ok):
        station.mac.enqueue(f"pkt{msdu}", dst, msdu_bytes)

    station.mac.set_sent_callback(
        lambda msdu, d, ok, s=station: (s.sent_results.append((msdu, d, ok)), refill(msdu, d, ok))
    )
    for i in range(4):
        station.mac.enqueue(f"seed{i}", dst, msdu_bytes)
