"""Regenerate ``goldens.json`` for the spec-refactor identity tests.

The stored goldens were produced by the *pre-refactor* experiment code
(hand-wired ``build_network`` + app plumbing).  The spec-layer tests in
``test_spec_goldens.py`` rebuild the same scenarios from declarative
:class:`~repro.scenario.ScenarioSpec` objects and assert the rendered
outputs, metrics and trace digests are bit-identical — the proof that
the refactor changed plumbing, not physics.

Run from the repo root::

    PYTHONPATH=src python tests/experiments/make_goldens.py

Only regenerate after an *intentional* simulation-semantics change, and
say so in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

GOLDENS_PATH = Path(__file__).with_name("goldens.json")

#: (experiment name, kwargs for the registry runner) — small but
#: non-trivial parameters so the whole file regenerates in minutes.
EXPERIMENT_CASES: list[tuple[str, dict]] = [
    ("table2", {}),
    ("figure2", {"duration_s": 0.6, "seed": 2}),
    ("figure3", {"probes": 30, "seed": 1}),
    ("figure4", {"probes": 30, "seed": 1}),
    ("table3", {"probes": 30, "seed": 1}),
    ("figure7", {"duration_s": 1.0, "seed": 1}),
    ("figure9", {"duration_s": 1.0, "seed": 1}),
    ("figure11", {"duration_s": 1.0, "seed": 1}),
    ("figure12", {"duration_s": 1.0, "seed": 1}),
    ("figure1", {}),
    ("scenarios", {}),
    ("arf", {"duration_s": 0.5, "seed": 1}),
    ("delay", {"duration_s": 2.0, "seed": 1}),
    ("multihop", {"duration_s": 1.0, "seed": 1}),
    ("density", {"duration_s": 1.0, "seed": 1}),
    ("fault-blackout", {"duration_s": 15.0, "seed": 1}),
    ("fault-crash", {"duration_s": 15.0, "seed": 1}),
    ("mac-surface", {"duration_s": 1.0, "seed": 1}),
]


def sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def trace_digest(tracer) -> str:
    """Order-independent fingerprint of every trace counter."""
    return sha(json.dumps(tracer.counters(), sort_keys=True))


def experiment_outputs() -> dict:
    from repro.experiments.registry import EXPERIMENTS

    outputs = {}
    for name, kwargs in EXPERIMENT_CASES:
        text = EXPERIMENTS[name].run(**kwargs)
        outputs[name] = {"kwargs": kwargs, "sha256": sha(text)}
        print(f"  {name}: {outputs[name]['sha256'][:16]}")
    return outputs


def scenario_digests() -> dict:
    """Event-level digests of hand-wired scenarios the spec layer must hit."""
    from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
    from repro.apps.cbr import CbrSource
    from repro.apps.sink import UdpSink
    from repro.channel.mobility import walk_away
    from repro.channel.propagation import TwoRayGroundPathLoss
    from repro.core.params import Dot11bConfig, MacParameters, Rate
    from repro.experiments.common import build_network
    from repro.faults import FaultSchedule, NodeCrash, link_blackout
    from repro.phy.radio import RadioParameters

    digests = {}

    # two-node-udp: saturated CBR, clean channel (the figure2 shape).
    net = build_network([0, 10], data_rate=Rate.MBPS_11, seed=3, fast_sigma_db=0.0)
    sink = UdpSink(net[1], port=5001, warmup_s=0.1)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
    net.run(0.5)
    digests["two-node-udp"] = {
        "trace": trace_digest(net.tracer),
        "metric": sink.throughput_bps(0.5),
    }

    # two-node-tcp: bulk transfer with RTS/CTS.
    net = build_network(
        [0, 10], data_rate=Rate.MBPS_2, rts_enabled=True, seed=4, fast_sigma_db=0.0
    )
    receiver = BulkTcpReceiver(net[1], port=5001, warmup_s=0.1)
    BulkTcpSender(net[0], dst=2, dst_port=5001)
    net.run(0.5)
    digests["two-node-tcp"] = {
        "trace": trace_digest(net.tracer),
        "metric": receiver.throughput_bps(0.5),
    }

    # loss-probe: the ranges methodology (no retries, paced probes, drain).
    net = build_network(
        [0.0, 60.0],
        data_rate=Rate.MBPS_11,
        seed=61,
        dot11=Dot11bConfig(mac=MacParameters(short_retry_limit=0, long_retry_limit=0)),
    )
    sink = UdpSink(net[1], port=5001)
    source = CbrSource(
        net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=512 * 8 / 0.005
    )
    net.run(60 * 0.005)
    source.stop()
    net.sim.run()
    digests["loss-probe"] = {
        "trace": trace_digest(net.tracer),
        "metric": 1.0 - sink.packets / source.packets_accepted,
    }

    # four-node-udp: two concurrent sessions, asymmetric placement.
    from repro.channel.placement import figure6_placement

    positions = [x for x, _ in figure6_placement().positions]
    net = build_network(positions, data_rate=Rate.MBPS_11, seed=1)
    meters = []
    for index, (tx, rx) in enumerate(((0, 1), (2, 3))):
        port = 5001 + index
        meter = UdpSink(net[rx], port=port, warmup_s=0.2)
        CbrSource(net[tx], dst=net[rx].address, dst_port=port, payload_bytes=512)
        meters.append(meter)
    net.run(1.0)
    digests["four-node-udp"] = {
        "trace": trace_digest(net.tracer),
        "metric": [meter.throughput_bps(1.0) for meter in meters],
    }

    # blackout: CBR through a mid-run link outage.
    net = build_network([0, 10], data_rate=Rate.MBPS_11, seed=1, fast_sigma_db=0.0)
    sink = UdpSink(net[1], port=5001)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=1.5e6)
    FaultSchedule([link_blackout(2.0, 2.0, node_a=0, node_b=1)]).install(net)
    net.run(6.0)
    digests["blackout"] = {
        "trace": trace_digest(net.tracer),
        "metric": sink.packets,
    }

    # crash-reboot: TCP sender crashes, reboots, restarts the transfer.
    net = build_network([0, 10], seed=1, fast_sigma_db=0.0)
    receiver = BulkTcpReceiver(net[1], port=5001)
    BulkTcpSender(net[0], dst=2, dst_port=5001)

    def restart(node):
        BulkTcpSender(node, dst=2, dst_port=5001)

    FaultSchedule(
        [NodeCrash(start_s=2.0, duration_s=2.0, node=0, on_reboot=restart)]
    ).install(net)
    net.run(6.0)
    digests["crash-reboot"] = {
        "trace": trace_digest(net.tracer),
        "metric": receiver.bytes,
    }

    # walk-away: receiver walks out of range (the mobility shape).
    net = build_network(
        [0.0, 5.0],
        data_rate=Rate.MBPS_11,
        seed=1,
        radio=RadioParameters.ns2_default(),
        propagation=TwoRayGroundPathLoss(),
    )
    sink = UdpSink(net[1], port=5001)
    CbrSource(
        net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=512 * 8 / 0.02
    )
    walk_away(net.sim, net[1].phy, 10.0)
    net.run(5.0)
    digests["walk-away"] = {
        "trace": trace_digest(net.tracer),
        "metric": len(sink.rx_times_ns),
    }

    for name, entry in digests.items():
        print(f"  {name}: {entry['trace'][:16]}")
    return digests


def trace_spec_cases() -> dict:
    """Name -> :class:`ScenarioSpec` with the streaming digest enabled.

    These pin the *event-level JSONL stream* (every trace record, in
    order, canonically encoded) rather than the counter fingerprint the
    scenario digests use — a reordered event is invisible to counters
    but changes this digest.
    """
    from repro.experiments.four_nodes import ASYMMETRIC_SESSIONS, panel_spec
    from repro.scenario import ScenarioSpec

    specs = {}
    for name, transport in (("figure7-udp", "udp"), ("figure7-tcp", "tcp")):
        spec = panel_spec(
            "figure6", 11.0, transport, False, ASYMMETRIC_SESSIONS,
            duration_s=1.0, seed=1,
        )
        specs[name] = ScenarioSpec.from_dict(
            {**spec.to_dict(), "observability": {"trace_digest": True}}
        )
    return specs


def trace_stream_digests() -> dict:
    from repro.scenario import run_scenarios

    digests = {}
    for name, spec in trace_spec_cases().items():
        [row] = run_scenarios(
            [spec], extract="repro.obs.export:trace_digest_row"
        )
        digests[name] = row
        print(f"  {name}: {row['trace_sha256'][:16]} ({row['records']} records)")
    return digests


def main() -> None:
    print("experiment outputs:")
    outputs = experiment_outputs()
    print("scenario digests:")
    digests = scenario_digests()
    print("trace stream digests:")
    traces = trace_stream_digests()
    GOLDENS_PATH.write_text(
        json.dumps(
            {"experiments": outputs, "scenarios": digests, "traces": traces},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {GOLDENS_PATH}")


if __name__ == "__main__":
    main()
