"""Registry shims declare their parameters; unknown overrides fail loudly."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, Experiment
from repro.experiments.runner import run_experiment


def test_every_shim_declares_explicit_parameters():
    for experiment in EXPERIMENTS.values():
        assert not experiment._accepts_anything(), (
            f"{experiment.name} still has a **kwargs sink"
        )


def test_invoke_rejects_unknown_override_listing_accepted():
    with pytest.raises(ExperimentError) as excinfo:
        EXPERIMENTS["figure2"].invoke({"duraton_s": 1.0})
    message = str(excinfo.value)
    assert "duraton_s" in message
    assert "duration_s" in message  # the accepted-keys list


def test_invoke_filters_harness_keywords_to_the_signature():
    # figure1 takes no parameters; the runner's standard keywords must
    # not crash it.
    output = EXPERIMENTS["figure1"].invoke(
        None, seed=1, duration_s=10.0, probes=200, jobs=1, cache=None,
        policy=None,
    )
    assert output


def test_invoke_applies_overrides():
    fast = EXPERIMENTS["figure2"].invoke({"duration_s": 0.5, "seed": 2})
    assert "Figure 2" in fast


def test_runner_surfaces_unknown_override_as_failure_record():
    result = run_experiment("figure1", overrides={"nonsense": 1})
    assert not result.ok
    assert result.error_type == "ExperimentError"
    assert "nonsense" in result.error


def test_var_keyword_test_doubles_still_pass_through():
    def fake(**kwargs) -> str:
        return str(sorted(kwargs))

    experiment = Experiment("fake", "test double", fake)
    out = experiment.invoke({"anything": 1}, seed=3)
    assert "anything" in out and "seed" in out


def test_accepted_params_reflect_signature():
    assert EXPERIMENTS["figure3"].accepted_params() == (
        "probes", "seed", "jobs", "cache", "policy",
    )


def test_error_lists_accepted_keys_sorted():
    """Regression: the accepted-keys list is sorted, not signature order."""
    with pytest.raises(ExperimentError) as excinfo:
        EXPERIMENTS["figure3"].invoke({"bogus": 1})
    accepted = str(excinfo.value).split("accepted: ")[1]
    keys = [key.strip() for key in accepted.split(",")]
    assert keys == sorted(keys)
    assert keys == ["cache", "jobs", "policy", "probes", "seed"]


def test_error_includes_dotted_spec_paths():
    """mac-surface advertises its sweepable ``--set`` paths on failure."""
    with pytest.raises(ExperimentError) as excinfo:
        EXPERIMENTS["mac-surface"].invoke({"stack.mac.cw_min": 64})
    message = str(excinfo.value)
    assert "stack.mac.cw_min_slots" in message
    assert "stack.mac.queue_frames" in message
    keys = [
        key.strip() for key in message.split("accepted: ")[1].split(",")
    ]
    assert keys == sorted(keys)


def test_spec_params_translate_dotted_paths_to_shim_kwargs():
    def fake(cw_min=None, seed=1) -> str:
        return f"cw_min={cw_min} seed={seed}"

    experiment = Experiment(
        "fake", "test double", fake,
        spec_params={"stack.mac.cw_min_slots": "cw_min"},
    )
    out = experiment.invoke({"stack.mac.cw_min_slots": 64})
    assert out == "cw_min=64 seed=1"


def test_mac_surface_dotted_pin_reaches_the_sweep():
    pins = {
        "stack.mac.cw_min_slots": 64,
        "stack.mac.cw_max_slots": 1024,
        "stack.mac.short_retry_limit": 7,
        "stack.mac.slot_time_us": 20.0,
        "stack.mac.sifs_us": 10.0,
        "stack.mac.queue_frames": 50,
    }
    out = EXPERIMENTS["mac-surface"].invoke(pins, duration_s=0.3, seed=1)
    assert " 64 " in out  # the pinned CWmin row
    assert " 32 " not in out  # default CWmin rows collapsed away
