"""Registry shims declare their parameters; unknown overrides fail loudly."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, Experiment
from repro.experiments.runner import run_experiment


def test_every_shim_declares_explicit_parameters():
    for experiment in EXPERIMENTS.values():
        assert not experiment._accepts_anything(), (
            f"{experiment.name} still has a **kwargs sink"
        )


def test_invoke_rejects_unknown_override_listing_accepted():
    with pytest.raises(ExperimentError) as excinfo:
        EXPERIMENTS["figure2"].invoke({"duraton_s": 1.0})
    message = str(excinfo.value)
    assert "duraton_s" in message
    assert "duration_s" in message  # the accepted-keys list


def test_invoke_filters_harness_keywords_to_the_signature():
    # figure1 takes no parameters; the runner's standard keywords must
    # not crash it.
    output = EXPERIMENTS["figure1"].invoke(
        None, seed=1, duration_s=10.0, probes=200, jobs=1, cache=None,
        policy=None,
    )
    assert output


def test_invoke_applies_overrides():
    fast = EXPERIMENTS["figure2"].invoke({"duration_s": 0.5, "seed": 2})
    assert "Figure 2" in fast


def test_runner_surfaces_unknown_override_as_failure_record():
    result = run_experiment("figure1", overrides={"nonsense": 1})
    assert not result.ok
    assert result.error_type == "ExperimentError"
    assert "nonsense" in result.error


def test_var_keyword_test_doubles_still_pass_through():
    def fake(**kwargs) -> str:
        return str(sorted(kwargs))

    experiment = Experiment("fake", "test double", fake)
    out = experiment.invoke({"anything": 1}, seed=3)
    assert "anything" in out and "seed" in out


def test_accepted_params_reflect_signature():
    assert EXPERIMENTS["figure3"].accepted_params() == (
        "probes", "seed", "jobs", "cache", "policy",
    )
