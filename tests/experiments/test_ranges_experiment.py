"""Tests for the range experiments (Figures 3-4, Table 3)."""

import pytest

from repro.core.params import Rate
from repro.experiments.ranges import (
    LossCurve,
    estimate_tx_range,
    format_loss_curves,
    format_table3,
    measure_loss_at,
    run_figure4,
    run_loss_sweep,
)


class TestMeasureLoss:
    def test_close_link_is_lossless(self):
        assert measure_loss_at(Rate.MBPS_11, 10.0, probes=50) == 0.0

    def test_far_link_loses_everything(self):
        assert measure_loss_at(Rate.MBPS_11, 120.0, probes=50) == 1.0

    def test_edge_of_range_is_partial(self):
        loss = measure_loss_at(Rate.MBPS_11, 31.0, probes=120)
        assert 0.1 < loss < 0.9


class TestLossSweep:
    @pytest.fixture(scope="class")
    def curve_11(self):
        return run_loss_sweep(
            Rate.MBPS_11, tuple(range(20, 61, 10)), probes=80, seed=5
        )

    def test_curve_is_roughly_monotone(self, curve_11):
        # Allow small sampling wiggle but require the trend.
        losses = curve_11.loss_rates
        assert losses[0] < 0.2
        assert losses[-1] > 0.9
        for earlier, later in zip(losses, losses[2:]):
            assert later >= earlier - 0.15

    def test_estimate_in_table3_band(self, curve_11):
        assert 25.0 <= estimate_tx_range(curve_11) <= 36.0

    def test_estimate_edge_cases(self):
        all_lost = LossCurve("x", Rate.MBPS_11, (10.0, 20.0), (0.9, 1.0))
        assert estimate_tx_range(all_lost) == 10.0
        all_fine = LossCurve("x", Rate.MBPS_11, (10.0, 20.0), (0.0, 0.1))
        assert estimate_tx_range(all_fine) == 20.0
        flat_cross = LossCurve("x", Rate.MBPS_11, (10.0, 20.0), (0.5, 0.5))
        assert estimate_tx_range(flat_cross) == 10.0

    def test_interpolation_between_samples(self):
        curve = LossCurve("x", Rate.MBPS_11, (10.0, 20.0), (0.25, 0.75))
        assert estimate_tx_range(curve) == pytest.approx(15.0)


class TestFigure4:
    def test_bad_day_shifts_curve_left(self):
        distances = tuple(range(90, 141, 10))
        good, bad = run_figure4(probes=80, seed=5, distances_m=distances)
        assert estimate_tx_range(bad) < estimate_tx_range(good)

    def test_formatting(self):
        distances = (100.0, 120.0)
        curves = run_figure4(probes=20, seed=5, distances_m=distances)
        text = format_loss_curves(curves, "Figure 4")
        assert "2002-12-06" in text
        assert "2002-12-09" in text


class TestTable3Formatting:
    def test_format_includes_bands(self):
        from repro.experiments.ranges import RangeEstimate

        rows = [
            RangeEstimate(Rate.MBPS_11, "data", 31.0, (25.0, 35.0)),
            RangeEstimate(Rate.MBPS_2, "control", 120.0, (85.0, 100.0)),
        ]
        text = format_table3(rows)
        assert "25-35" in text
        assert "NO" in text  # the out-of-band row is flagged
