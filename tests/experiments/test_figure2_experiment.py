"""Tests for the Figure-2 experiment (ideal vs measured throughput)."""

import pytest

from repro.core.params import Rate
from repro.experiments.two_nodes import format_figure2, run_figure2


@pytest.fixture(scope="module")
def results():
    return run_figure2(rate=Rate.MBPS_11, duration_s=1.5, warmup_s=0.2, seed=3)


class TestFigure2:
    def test_four_panels(self, results):
        panels = {(r.transport, r.rts_cts) for r in results}
        assert panels == {
            ("udp", False),
            ("udp", True),
            ("tcp", False),
            ("tcp", True),
        }

    def test_udp_close_to_ideal(self, results):
        for r in results:
            if r.transport == "udp":
                assert r.ratio == pytest.approx(1.0, abs=0.08)

    def test_tcp_clearly_below_ideal(self, results):
        for r in results:
            if r.transport == "tcp":
                assert 0.4 < r.ratio < 0.95

    def test_rts_reduces_ideal_and_measured(self, results):
        by_key = {(r.transport, r.rts_cts): r for r in results}
        assert (
            by_key[("udp", True)].ideal_mbps < by_key[("udp", False)].ideal_mbps
        )
        assert (
            by_key[("udp", True)].measured_mbps
            < by_key[("udp", False)].measured_mbps
        )

    def test_formatting(self, results):
        text = format_figure2(results)
        assert "UDP" in text and "TCP" in text and "ideal" in text
