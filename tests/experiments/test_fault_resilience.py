"""The fault-resilience experiment family (shortened for test runtime)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fault_resilience import (
    format_link_blackout,
    format_node_crash,
    run_link_blackout,
    run_node_crash,
)


class TestLinkBlackout:
    def test_throughput_degrades_then_recovers(self):
        result = run_link_blackout(duration_s=6.0, blackout_s=2.0, seed=1)
        before, during, after = result.phases
        assert before.label == "before"
        assert during.label == "blackout"
        assert result.degraded  # outage visibly suppressed goodput
        assert before.mbps > 1.0
        assert after.mbps > 1.0  # recovered once the link returned
        assert result.packets_received > 0
        assert result.mac_retries > 0  # the MAC fought the outage

    def test_too_short_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="clean"):
            run_link_blackout(duration_s=5.0, blackout_s=5.0)

    def test_format_reports_verdict(self):
        result = run_link_blackout(duration_s=6.0, blackout_s=2.0, seed=1)
        text = format_link_blackout(result)
        assert "fault-blackout" in text
        assert "degraded, then recovered" in text
        assert "MAC retries" in text


class TestNodeCrash:
    def test_tcp_recovers_on_fresh_connection(self):
        result = run_node_crash(
            duration_s=7.0, crash_s=2.0, downtime_s=2.0, seed=1
        )
        assert result.recovered
        assert result.connections_seen == 2
        assert result.old_connection_reason == "aborted"
        assert result.bytes_after_reboot > 0
        before, down, after = result.phases
        assert before.mbps > 0.5
        assert down.mbps == 0.0
        assert after.mbps > 0.5

    def test_too_short_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="reboot"):
            run_node_crash(duration_s=5.0, crash_s=3.0, downtime_s=2.0)

    def test_format_reports_verdict(self):
        result = run_node_crash(
            duration_s=7.0, crash_s=2.0, downtime_s=2.0, seed=1
        )
        text = format_node_crash(result)
        assert "fault-crash" in text
        assert "recovered on a fresh connection" in text
        assert "aborted" in text
