"""Tests for the diagram renderers (Figures 1, 5, 6, 8, 10)."""

from repro.channel.placement import figure6_placement, figure10_placement
from repro.core.encapsulation import TransportProtocol
from repro.experiments.diagrams import format_figure1, format_scenario


class TestFigure1:
    def test_contains_every_layer(self):
        text = format_figure1(512)
        for layer in ("application", "udp", "ip", "mac", "plcp"):
            assert layer in text

    def test_totals_match_encapsulation(self):
        text = format_figure1(512, TransportProtocol.TCP)
        assert "532B" in text  # 512 + 20 TCP
        assert "552B" in text  # + 20 IP
        assert "586B" in text  # + 34 MAC hdr/FCS

    def test_plcp_duration_shown(self):
        assert "192us" in format_figure1(512)


class TestScenario:
    def test_stations_in_order(self):
        text = format_scenario(figure6_placement())
        assert text.index("S1") < text.index("S2") < text.index("S3")

    def test_distances_labelled(self):
        text = format_scenario(figure6_placement())
        assert "d(1,2)=25m" in text
        assert "d(2,3)=80m" in text

    def test_sessions_rendered(self):
        text = format_scenario(
            figure10_placement(), sessions=((0, 1), (3, 2))
        )
        assert "S1 -> S2" in text
        assert "S4 -> S3" in text
