"""Tests for the Table-2 experiment runner."""

from repro.core.params import Rate
from repro.experiments.table2 import format_table2, run_table2


class TestRunTable2:
    def test_sixteen_cells(self):
        assert len(run_table2()) == 16

    def test_every_no_rts_cell_matches_paper(self):
        for row in run_table2():
            if not row.rts_cts:
                assert abs(row.standard_mbps - row.paper_mbps) < 0.002

    def test_every_cell_matches_under_some_interpretation_except_known_typo(self):
        mismatches = [row for row in run_table2() if not row.matches_paper]
        # The single known outlier: 1 Mbps / 512 B / RTS-CTS (see DESIGN.md).
        assert len(mismatches) == 1
        outlier = mismatches[0]
        assert outlier.rate is Rate.MBPS_1
        assert outlier.payload_bytes == 512
        assert outlier.rts_cts

    def test_formatting_contains_all_rates(self):
        text = format_table2(run_table2())
        for rate in ("11 Mbps", "5.5 Mbps", "2 Mbps", "1 Mbps"):
            assert rate in text
