"""Tests for the MAC parameter-response surface experiment."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.mac_surface import (
    SURFACE_AXES,
    format_mac_surface,
    mac_surface_metrics,
    ring_positions,
    run_mac_surface,
    saturation_spec,
    surface_sweeps,
)
from repro.parallel import SweepCache
from repro.scenario import ScenarioSpec, build, run_scenarios

#: Collapse every axis so the whole surface is one point per axis.
PIN_ALL = {
    "cw_min": 32,
    "cw_max": 1024,
    "retry": 7,
    "slot_us": 20.0,
    "sifs_us": 10.0,
    "queue": 50,
}


def test_ring_positions_are_equidistant_from_the_sink():
    positions = ring_positions(5)
    assert positions[0] == (0.0, 0.0)
    assert len(positions) == 6
    for x, y in positions[1:]:
        assert (x * x + y * y) ** 0.5 == pytest.approx(5.0)


def test_saturation_spec_round_trips_canonically():
    spec = saturation_spec(3, duration_s=0.5, seed=7)
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.canonical_json() == spec.canonical_json()
    assert len(spec.traffic.flows) == 3
    assert all(flow.rate_bps is None for flow in spec.traffic.flows)
    assert spec.observability.audit


def test_surface_rows_cover_every_axis_value():
    rows = surface_sweeps(stations=(2, 5), duration_s=0.5)
    per_n = sum(len(values) for _, _, values in SURFACE_AXES)
    assert len(rows) == 2 * per_n
    seen = {(n, label, value) for n, label, value, _ in rows}
    for label, _, values in SURFACE_AXES:
        for n in (2, 5):
            for value in values:
                assert (n, label, value) in seen


def test_pins_collapse_axes_and_reach_the_spec():
    rows = surface_sweeps(stations=(2,), duration_s=0.5, pins=PIN_ALL)
    assert len(rows) == len(SURFACE_AXES)
    for _, label, value, spec in rows:
        assert value == PIN_ALL[label]
    cw_row = next(spec for _, label, _, spec in rows if label == "cw_min")
    assert cw_row.stack.mac.cw_min_slots == 32


def test_unknown_pin_is_rejected_with_the_axis_menu():
    with pytest.raises(ExperimentError, match="cw_minn.*accepted"):
        surface_sweeps(pins={"cw_minn": 32})


def test_metrics_shape_and_fairness_bounds():
    spec = saturation_spec(2, duration_s=0.3, warmup_s=0.1)
    net = build(spec)
    net.run(spec.duration_s)
    total_bps, mean_delay_s, jain = mac_surface_metrics(net)
    assert total_bps > 1e6  # saturated 11 Mbps channel
    assert 0.0 < mean_delay_s < 1.0
    assert 0.5 <= jain <= 1.0


def test_surface_output_identical_serial_pooled_and_cached(tmp_path):
    """The acceptance matrix: serial == --jobs 2 == warm cache, bytewise."""
    kwargs = dict(
        stations=(2,), duration_s=0.3, seed=1, pins=PIN_ALL
    )
    cache = SweepCache(root=tmp_path / "cache")
    serial = format_mac_surface(run_mac_surface(**kwargs))
    pooled = format_mac_surface(run_mac_surface(**kwargs, jobs=2, cache=cache))
    warm = format_mac_surface(run_mac_surface(**kwargs, cache=cache))
    assert serial == pooled == warm
    assert cache.hits > 0


# ------------------------------------------- cross-backend determinism
#
# Satellite: one small mac-surface point must produce bit-identical
# event streams under every kernel x medium backend combination — the
# accelerated reception kernel and the spatially-indexed medium are
# optimisations, not physics.

BACKENDS = [
    (kernel, medium)
    for kernel in ("python", "numpy")
    for medium in ("dense", "spatial")
]


def _digest_spec(kernel: str, medium: str) -> ScenarioSpec:
    spec = saturation_spec(2, duration_s=0.3, warmup_s=0.1)
    doc = spec.to_dict()
    doc["stack"]["kernel"] = kernel
    doc["topology"]["medium"] = medium
    doc["observability"]["trace_digest"] = True
    return ScenarioSpec.from_dict(doc)


def test_trace_digest_identical_across_kernel_medium_matrix():
    digests = {}
    for kernel, medium in BACKENDS:
        [row] = run_scenarios(
            [_digest_spec(kernel, medium)],
            extract="repro.obs.export:trace_digest_row",
        )
        assert row["records"] > 0
        digests[(kernel, medium)] = row["trace_sha256"]
    assert len(set(digests.values())) == 1, (
        "backend matrix diverged: " + repr(digests)
    )
