"""The hardened runner: isolation, retries, timeouts, reports."""

import json
import time

from repro.errors import SimulationError
from repro.experiments.registry import Experiment
from repro.experiments.runner import (
    DEFAULT_RETRY_SEED_STEP,
    RunnerConfig,
    run_experiment,
    run_suite,
)


def make_registry(**runners):
    return {
        name: Experiment(name, f"fake {name}", run)
        for name, run in runners.items()
    }


def ok_run(seed=1, **kwargs):
    return f"ok seed={seed}"


def crash_run(**kwargs):
    raise ValueError("deterministic bug")


def kernel_crash_run(**kwargs):
    raise SimulationError("livelock detected")


class TestIsolation:
    def test_one_failure_does_not_stop_the_suite(self):
        registry = make_registry(a=ok_run, b=crash_run, c=ok_run)
        report = run_suite(
            ["a", "b", "c"], config=RunnerConfig(max_retries=0),
            experiments=registry,
        )
        assert [r.status for r in report.results] == ["ok", "failed", "ok"]
        assert not report.all_ok
        assert [r.name for r in report.succeeded] == ["a", "c"]
        assert report.failed[0].error == "deterministic bug"
        assert report.failed[0].error_type == "ValueError"
        assert "deterministic bug" in report.failed[0].traceback

    def test_unknown_name_is_a_failure_record_not_an_exception(self):
        result = run_experiment("nonsense", experiments=make_registry(a=ok_run))
        assert result.status == "failed"
        assert result.attempts == 0
        assert "unknown experiment" in result.error

    def test_deterministic_error_is_not_retried(self):
        calls = []

        def counting_crash(**kwargs):
            calls.append(1)
            raise ValueError("boom")

        result = run_experiment(
            "x",
            config=RunnerConfig(max_retries=3),
            experiments=make_registry(x=counting_crash),
        )
        assert result.status == "failed"
        assert len(calls) == 1
        assert result.attempts == 1


class TestRetries:
    def test_simulation_error_retries_with_perturbed_seed(self):
        seeds_seen = []

        def flaky(seed=1, **kwargs):
            seeds_seen.append(seed)
            if len(seeds_seen) == 1:
                raise SimulationError("transient livelock")
            return f"recovered on seed {seed}"

        result = run_experiment(
            "flaky",
            seed=7,
            config=RunnerConfig(max_retries=2),
            experiments=make_registry(flaky=flaky),
        )
        assert result.status == "ok"
        assert result.attempts == 2
        assert seeds_seen == [7, 7 + DEFAULT_RETRY_SEED_STEP]
        assert result.seeds == seeds_seen
        assert "recovered" in result.output

    def test_exhausted_retries_degrade_to_failure(self):
        result = run_experiment(
            "x",
            config=RunnerConfig(max_retries=2),
            experiments=make_registry(x=kernel_crash_run),
        )
        assert result.status == "failed"
        assert result.attempts == 3
        assert result.error == "livelock detected"
        assert result.error_type == "SimulationError"

    def test_zero_retries_fails_on_first_kernel_error(self):
        result = run_experiment(
            "x",
            config=RunnerConfig(max_retries=0),
            experiments=make_registry(x=kernel_crash_run),
        )
        assert result.attempts == 1

    def test_backoff_slept_between_retries_deterministically(
        self, monkeypatch
    ):
        import repro.experiments.runner as runner_module
        from repro.parallel import backoff_delay_s

        slept = []
        monkeypatch.setattr(
            runner_module.time, "sleep", lambda s: slept.append(s)
        )
        run_experiment(
            "x",
            config=RunnerConfig(
                max_retries=2, backoff_base_s=0.1, backoff_max_s=2.0
            ),
            experiments=make_registry(x=kernel_crash_run),
        )
        expected = [
            backoff_delay_s(attempt, 0.1, 2.0, token="x")
            for attempt in (1, 2)
        ]
        assert slept == expected  # jitter is derived, not random

    def test_backoff_disabled_with_zero_base(self, monkeypatch):
        import repro.experiments.runner as runner_module

        slept = []
        monkeypatch.setattr(
            runner_module.time, "sleep", lambda s: slept.append(s)
        )
        run_experiment(
            "x",
            config=RunnerConfig(max_retries=2, backoff_base_s=0.0),
            experiments=make_registry(x=kernel_crash_run),
        )
        assert slept == []


class TestTimeout:
    def test_hung_experiment_reported_as_timeout(self):
        def hang(**kwargs):
            time.sleep(5.0)
            return "never"

        result = run_experiment(
            "hang",
            config=RunnerConfig(timeout_s=0.1, max_retries=0),
            experiments=make_registry(hang=hang),
        )
        assert result.status == "timeout"
        assert result.error_type == "WatchdogTimeout"
        assert "wall-clock budget" in result.error

    def test_fast_experiment_unaffected_by_timeout(self):
        result = run_experiment(
            "a",
            config=RunnerConfig(timeout_s=30.0),
            experiments=make_registry(a=ok_run),
        )
        assert result.ok


class TestReport:
    def test_json_round_trip(self):
        registry = make_registry(a=ok_run, b=crash_run)
        report = run_suite(
            ["a", "b"], config=RunnerConfig(max_retries=0),
            experiments=registry,
        )
        data = json.loads(report.to_json())
        assert data["total"] == 2
        assert data["succeeded"] == 1
        assert data["failed"] == 1
        by_name = {entry["name"]: entry for entry in data["results"]}
        assert by_name["a"]["status"] == "ok"
        assert by_name["a"]["output"].startswith("ok seed=")
        assert by_name["b"]["error"] == "deterministic bug"

    def test_format_summary_mentions_every_experiment(self):
        registry = make_registry(a=ok_run, b=crash_run)
        report = run_suite(
            ["a", "b"], config=RunnerConfig(max_retries=0),
            experiments=registry,
        )
        summary = report.format_summary()
        assert "1/2 experiments ok" in summary
        assert "a" in summary and "b" in summary
        assert "deterministic bug" in summary

    def test_on_result_streams_in_order(self):
        seen = []
        run_suite(
            ["a", "b"],
            config=RunnerConfig(max_retries=0),
            experiments=make_registry(a=ok_run, b=crash_run),
            on_result=lambda result: seen.append(result.name),
        )
        assert seen == ["a", "b"]
