"""Tests for the extension experiments: delay, replication, ARF sweep."""

import pytest

from repro.core.params import Rate
from repro.errors import ExperimentError
from repro.experiments.delay import format_delay_sweep, run_delay_sweep
from repro.experiments.ratecontrol import format_arf_sweep, run_arf_sweep
from repro.experiments.replication import replicate, replicate_many, seeds_for


class TestDelaySweep:
    def test_light_load_has_low_delay(self):
        points = run_delay_sweep(
            rate=Rate.MBPS_11, load_fractions=(0.3,), duration_s=1.0,
            warmup_s=0.2,
        )
        assert points[0].mean_delay_s < 0.005
        assert points[0].p99_delay_s < 0.01

    def test_overload_has_high_delay_and_clipped_delivery(self):
        points = run_delay_sweep(
            rate=Rate.MBPS_11, load_fractions=(1.2,), duration_s=2.0,
            warmup_s=0.5,
        )
        point = points[0]
        assert point.mean_delay_s > 0.02
        assert point.delivered_bps < point.offered_bps

    def test_formatting(self):
        points = run_delay_sweep(
            rate=Rate.MBPS_2, load_fractions=(0.5,), duration_s=0.5,
            warmup_s=0.1,
        )
        text = format_delay_sweep(points, Rate.MBPS_2)
        assert "delay" in text and "2 Mbps" in text


class TestReplication:
    def test_deterministic_metric_has_zero_width(self):
        summary = replicate(lambda seed: 42.0, replications=4)
        assert summary.mean == 42.0
        assert summary.half_width == 0.0
        assert summary.count == 4

    def test_seed_dependent_metric_gets_distinct_seeds(self):
        seen = []
        replicate(lambda seed: seen.append(seed) or float(seed), replications=3)
        assert len(set(seen)) == 3

    def test_seeds_are_disjoint_across_base_seeds(self):
        a = set(seeds_for(5, base_seed=1))
        b = set(seeds_for(5, base_seed=2))
        assert not (a & b)

    def test_replicate_many_matches_seeds(self):
        seeds_a, seeds_b = [], []
        replicate_many(
            {
                "a": lambda seed: seeds_a.append(seed) or 0.0,
                "b": lambda seed: seeds_b.append(seed) or 0.0,
            },
            replications=3,
        )
        assert seeds_a == seeds_b

    def test_zero_replications_rejected(self):
        with pytest.raises(ExperimentError):
            replicate(lambda seed: 0.0, replications=0)

    def test_replicated_simulation_metric(self):
        """Replicating a real (tiny) simulation yields a tight CI."""
        from repro.apps.cbr import CbrSource
        from repro.apps.sink import UdpSink
        from repro.experiments.common import build_network

        def throughput(seed: int) -> float:
            net = build_network([0, 10], data_rate=Rate.MBPS_11, seed=seed)
            sink = UdpSink(net[1], port=5001, warmup_s=0.2)
            CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
            net.run(1.0)
            return sink.throughput_bps(1.0) / 1e6

        summary = replicate(throughput, replications=3)
        assert summary.mean == pytest.approx(3.05, abs=0.1)
        assert summary.half_width < 0.2


class TestArfSweep:
    def test_single_distance_row(self):
        rows = run_arf_sweep(distances_m=(10.0,), duration_s=1.0, warmup_s=0.2)
        assert len(rows) == 1
        assert rows[0].arf_mbps > 0.5 * rows[0].best_fixed_mbps

    def test_formatting(self):
        rows = run_arf_sweep(distances_m=(10.0,), duration_s=0.5, warmup_s=0.1)
        text = format_arf_sweep(rows)
        assert "ARF" in text
