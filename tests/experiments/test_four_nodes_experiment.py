"""Tests for the four-station experiments (the paper's §3.3 findings).

These are the headline qualitative claims of the reproduction, checked
end to end on shortened runs:

* Figure 7 (11 Mbps asymmetric): session 2 clearly beats session 1.
* Figure 9 (2 Mbps): the system is more balanced than at 11 Mbps.
* TCP narrows the UDP gap (same scenario, same rate).
* Figures 11/12 (symmetric): both sessions get comparable throughput.
"""

import pytest

from repro.channel.placement import figure6_placement, figure8_placement, figure10_placement
from repro.core.params import Rate
from repro.errors import ExperimentError
from repro.experiments.four_nodes import (
    SYMMETRIC_SESSIONS,
    format_four_node,
    run_four_node_scenario,
)

DURATION_S = 6.0


@pytest.fixture(scope="module")
def fig7_udp():
    return run_four_node_scenario(
        figure6_placement(), Rate.MBPS_11, "udp", rts_cts=False,
        duration_s=DURATION_S,
    )


@pytest.fixture(scope="module")
def fig7_tcp():
    return run_four_node_scenario(
        figure6_placement(), Rate.MBPS_11, "tcp", rts_cts=False,
        duration_s=DURATION_S,
    )


@pytest.fixture(scope="module")
def fig9_udp():
    return run_four_node_scenario(
        figure8_placement(), Rate.MBPS_2, "udp", rts_cts=False,
        duration_s=DURATION_S,
    )


class TestFigure7Asymmetry:
    def test_session2_strongly_beats_session1(self, fig7_udp):
        assert fig7_udp.ratio > 1.5

    def test_both_sessions_alive(self, fig7_udp):
        assert fig7_udp.session1_kbps > 50
        assert fig7_udp.session2_kbps > 1000

    def test_interaction_beyond_transmission_range(self, fig7_udp):
        # d(S1, S3) = 105 m is far beyond the 31 m data range at 11 Mbps,
        # yet session 1 achieves much less than an isolated pair would
        # (~3 Mbps): the coupling the paper demonstrates.
        assert fig7_udp.session1_kbps < 1500


class TestFigure9MoreBalanced:
    def test_2mbps_is_more_balanced_than_11mbps(self, fig7_udp, fig9_udp):
        assert fig9_udp.ratio < fig7_udp.ratio

    def test_session1_gets_a_meaningful_share(self, fig9_udp):
        assert fig9_udp.session1_kbps > 200


class TestTcpNarrowsTheGap:
    def test_tcp_ratio_below_udp_ratio_at_11mbps(self, fig7_udp, fig7_tcp):
        assert fig7_tcp.ratio < fig7_udp.ratio * 1.5  # never dramatically worse
        assert fig7_tcp.session1_kbps > 50


class TestSymmetricScenarios:
    def test_symmetric_11mbps_is_balanced(self):
        result = run_four_node_scenario(
            figure10_placement(), Rate.MBPS_11, "udp", rts_cts=False,
            sessions=SYMMETRIC_SESSIONS, duration_s=DURATION_S,
        )
        assert 0.5 < result.ratio < 2.0

    def test_labels_follow_session_direction(self):
        result = run_four_node_scenario(
            figure10_placement(), Rate.MBPS_11, "udp", rts_cts=False,
            sessions=SYMMETRIC_SESSIONS, duration_s=1.0,
        )
        assert result.sessions[0].label == "1->2"
        assert result.sessions[1].label == "4->3"


class TestRunnerValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ExperimentError):
            run_four_node_scenario(
                figure6_placement(), Rate.MBPS_11, "sctp", rts_cts=False
            )

    def test_formatting(self, fig7_udp):
        text = format_four_node([fig7_udp], "Figure 7")
        assert "1->2" in text and "3->4" in text
