"""Event-stream golden: the figure7 JSONL trace is bit-stable.

``goldens.json``'s ``traces`` section pins the SHA-256 of the canonical
JSONL encoding of *every trace record, in emission order* for the
figure7 panels.  That is a much sharper invariant than the counter
digests elsewhere in this directory: two events swapping places changes
this hash but not any counter.  The digest must also be identical
whether the point runs serially, through worker processes, or comes
back from a warm sweep cache.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.parallel import SweepCache
from repro.scenario import run_scenarios

from tests.experiments.make_goldens import trace_spec_cases

GOLDENS = json.loads(
    (Path(__file__).with_name("goldens.json")).read_text(encoding="utf-8")
)

EXTRACT = "repro.obs.export:trace_digest_row"


def test_every_trace_golden_has_a_spec():
    assert set(trace_spec_cases()) == set(GOLDENS["traces"])


@pytest.mark.parametrize("name", sorted(GOLDENS["traces"]))
def test_trace_stream_matches_golden(name):
    spec = trace_spec_cases()[name]
    [row] = run_scenarios([spec], extract=EXTRACT)
    assert row == GOLDENS["traces"][name]


def test_trace_digest_is_identical_serial_pooled_and_cached(tmp_path):
    spec = trace_spec_cases()["figure7-udp"]
    cache = SweepCache(root=tmp_path / "cache")
    [serial] = run_scenarios([spec], extract=EXTRACT)
    [pooled] = run_scenarios([spec], extract=EXTRACT, jobs=2, cache=cache)
    [warm] = run_scenarios([spec], extract=EXTRACT, cache=cache)
    assert serial == pooled == warm == GOLDENS["traces"]["figure7-udp"]
    assert cache.hits > 0
