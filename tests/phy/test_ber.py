"""Tests for the BER models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.params import ALL_RATES, Rate
from repro.errors import ConfigurationError
from repro.phy import ber


class TestBerModels:
    def test_ber_decreases_with_sinr(self):
        for rate in ALL_RATES:
            low = ber.ber(rate, 0.5)
            high = ber.ber(rate, 50.0)
            assert high < low

    def test_faster_rates_have_higher_ber_at_same_sinr(self):
        # At a fixed channel SINR, the higher rate both loses processing
        # gain and uses a denser modulation.
        sinr = 2.0
        bers = [ber.ber(rate, sinr) for rate in ALL_RATES]
        assert bers == sorted(bers)

    def test_ber_bounded(self):
        for rate in ALL_RATES:
            for sinr in (0.0, 0.1, 1.0, 100.0, 1e9):
                value = ber.ber(rate, sinr)
                assert 0.0 <= value <= 0.5

    def test_processing_gain(self):
        assert ber.ebn0_from_sinr(1.0, Rate.MBPS_1) == pytest.approx(22.0)
        assert ber.ebn0_from_sinr(1.0, Rate.MBPS_11) == pytest.approx(2.0)

    def test_negative_sinr_rejected(self):
        with pytest.raises(ConfigurationError):
            ber.ebn0_from_sinr(-1.0, Rate.MBPS_1)


class TestFrameSuccess:
    def test_zero_bits_always_succeed(self):
        assert ber.frame_success_probability(Rate.MBPS_11, 0.01, 0) == 1.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            ber.frame_success_probability(Rate.MBPS_11, 1.0, -1)

    def test_more_bits_lower_success(self):
        short = ber.frame_success_probability(Rate.MBPS_2, 1.0, 100)
        long = ber.frame_success_probability(Rate.MBPS_2, 1.0, 10_000)
        assert long < short

    def test_high_sinr_gives_near_certainty(self):
        p = ber.frame_success_probability(Rate.MBPS_11, 1000.0, 12_000)
        assert p > 0.999

    @given(
        rate=st.sampled_from(ALL_RATES),
        sinr=st.floats(min_value=0.0, max_value=1e6),
        bits=st.integers(min_value=0, max_value=20_000),
    )
    def test_probability_in_unit_interval(self, rate, sinr, bits):
        p = ber.frame_success_probability(rate, sinr, bits)
        assert 0.0 <= p <= 1.0
