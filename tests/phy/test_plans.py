"""Tests for transmission plans."""

import pytest
from hypothesis import given, strategies as st

from repro.core.airtime import AirtimeCalculator
from repro.core.params import ALL_RATES, Dot11bConfig, HeaderRatePolicy, Rate
from repro.errors import ConfigurationError
from repro.phy.plans import TransmissionPlan, control_frame_plan, data_frame_plan


@pytest.fixture
def airtime():
    return AirtimeCalculator()


class TestDataFramePlan:
    def test_three_segments(self, airtime):
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        assert [s.name for s in plan.segments] == ["plcp", "mac-header", "payload"]

    def test_duration_matches_airtime_calculator(self, airtime):
        for rate in ALL_RATES:
            plan = data_frame_plan(540, rate, airtime)
            expected_us = airtime.data_frame_us(540, rate)
            assert plan.duration_ns == pytest.approx(expected_us * 1000, abs=2)

    def test_plcp_at_1_mbps(self, airtime):
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        assert plan.segments[0].rate is Rate.MBPS_1
        assert plan.preamble_end_ns == 192_000

    def test_header_rate_follows_policy(self, airtime):
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        assert plan.segments[1].rate is Rate.MBPS_2

        standard = AirtimeCalculator(
            Dot11bConfig(header_rate_policy=HeaderRatePolicy.DATA_RATE)
        )
        plan = data_frame_plan(540, Rate.MBPS_11, standard)
        assert plan.segments[1].rate is Rate.MBPS_11

    def test_data_rate_property(self, airtime):
        plan = data_frame_plan(540, Rate.MBPS_5_5, airtime)
        assert plan.data_rate is Rate.MBPS_5_5

    def test_segment_offsets_tile_the_frame(self, airtime):
        plan = data_frame_plan(1052, Rate.MBPS_2, airtime)
        offsets = plan.segment_offsets_ns()
        assert offsets[0][0] == 0
        for (_, end_a, _), (start_b, _, _) in zip(offsets, offsets[1:]):
            assert end_a == start_b
        assert offsets[-1][1] == plan.duration_ns


class TestControlFramePlan:
    def test_ack_plan_duration(self, airtime):
        plan = control_frame_plan("ack", 112, airtime)
        # 192 us PLCP + 56 us body at 2 Mbps.
        assert plan.duration_ns == 248_000

    def test_rate_override(self, airtime):
        plan = control_frame_plan("rts", 160, airtime, rate=Rate.MBPS_1)
        assert plan.duration_ns == (192 + 160) * 1000

    def test_rejects_empty_body(self, airtime):
        with pytest.raises(ConfigurationError):
            control_frame_plan("bad", 0, airtime)


class TestPlanValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            TransmissionPlan(segments=())

    @given(
        msdu=st.integers(min_value=0, max_value=2346),
        rate=st.sampled_from(ALL_RATES),
    )
    def test_durations_always_positive_and_consistent(self, msdu, rate):
        plan = data_frame_plan(msdu, rate, AirtimeCalculator())
        assert plan.duration_ns > 0
        assert plan.duration_ns == sum(s.duration_ns for s in plan.segments)
