"""Kernel-vs-reference bit-identity for the reception fast path.

The numpy kernel is only allowed to exist because it is *indistinguishable*
from the reference implementation: same outcome for every context, same
RNG consumption.  These tests drive both implementations over generated
signal-overlap layouts — short and long timelines (straddling the
vectorization cutoff), duplicate offsets, zero interference, bursts around
the sensitivity and SINR thresholds — and demand identical verdicts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.airtime import AirtimeCalculator
from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.phy import kernel as kernel_module
from repro.phy.kernel import (
    KERNEL_ENV,
    VECTOR_CUTOFF,
    numpy_available,
    resolve_kernel,
)
from repro.phy.plans import data_frame_plan
from repro.phy.radio import RadioParameters
from repro.phy.reception import (
    BerReception,
    ReceptionContext,
    ReceptionOutcome,
    SinrThresholdReception,
)
from repro.units import dbm_to_mw

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy kernel not importable"
)

RADIO = RadioParameters.calibrated()
AIRTIME = AirtimeCalculator()
PLANS = [
    data_frame_plan(540, Rate.MBPS_11, AIRTIME),
    data_frame_plan(1460, Rate.MBPS_2, AIRTIME),
    data_frame_plan(20, Rate.MBPS_5_5, AIRTIME),
]

#: Interference levels that straddle every interesting boundary for a
#: -88..-50 dBm signal: nothing, far-below-threshold, near-threshold,
#: equal, and above.
LEVELS_MW = [0.0] + [
    dbm_to_mw(dbm) for dbm in (-95.0, -85.0, -75.0, -70.0, -65.0, -62.0, -60.0, -55.0)
]

RX_POWERS_DBM = [-90.0, -84.0, -76.0, -70.0, -60.0, -50.0]


@st.composite
def timelines(draw):
    """Sorted step-function timelines, offset 0 first, duplicates allowed."""
    n = draw(st.integers(min_value=1, max_value=3 * VECTOR_CUTOFF))
    tail = draw(
        st.lists(
            st.integers(min_value=0, max_value=1_500_000),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    offsets = [0] + sorted(tail)
    levels = draw(
        st.lists(st.sampled_from(LEVELS_MW), min_size=n, max_size=n)
    )
    return tuple(zip(offsets, levels))


def make_context(plan, rx_power_dbm, timeline):
    return ReceptionContext(
        plan=plan,
        rx_power_dbm=rx_power_dbm,
        noise_mw=dbm_to_mw(RADIO.noise_floor_dbm),
        interference_timeline=timeline,
    )


class TestResolveKernel:
    def test_explicit_names(self):
        assert resolve_kernel("python") == "python"
        assert resolve_kernel("numpy") == "numpy"

    def test_auto_prefers_numpy(self):
        assert resolve_kernel("auto") == "numpy"

    def test_environment_is_consulted(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        assert resolve_kernel() == "python"

    def test_preference_beats_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        assert resolve_kernel("python") == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("fortran")

    def test_explicit_numpy_without_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(kernel_module, "_np", None)
        assert resolve_kernel() == "python"  # auto falls back silently
        with pytest.raises(ConfigurationError):
            resolve_kernel("numpy")  # an explicit ask does not


class TestSinrBitIdentity:
    @settings(max_examples=300, deadline=None)
    @given(
        plan_index=st.integers(min_value=0, max_value=len(PLANS) - 1),
        rx_power_dbm=st.sampled_from(RX_POWERS_DBM),
        timeline=timelines(),
    )
    def test_kernel_matches_reference(self, plan_index, rx_power_dbm, timeline):
        plan = PLANS[plan_index]
        reference = SinrThresholdReception(kernel="python")
        fast = SinrThresholdReception(kernel="numpy")
        context = make_context(plan, rx_power_dbm, timeline)
        expected = reference.evaluate(context, RADIO, random.Random(0))
        assert fast.evaluate(context, RADIO, random.Random(0)) is expected

    def test_duplicate_offsets_long_timeline(self):
        # Above the vectorization cutoff with every offset doubled: the
        # keep-last dedupe must pick the later level, like the reference's
        # lo < hi interval check does.
        strong = dbm_to_mw(-60.0)
        offsets = [0] + sorted(
            list(range(0, 700_000, 50_000)) + list(range(0, 700_000, 50_000))
        )[1:]
        timeline = tuple(
            (off, strong if i % 2 == 0 else 0.0) for i, off in enumerate(offsets)
        )
        assert len(timeline) >= VECTOR_CUTOFF
        for plan in PLANS:
            context = make_context(plan, -60.0, timeline)
            expected = SinrThresholdReception(kernel="python").evaluate(
                context, RADIO, random.Random(0)
            )
            got = SinrThresholdReception(kernel="numpy").evaluate(
                context, RADIO, random.Random(0)
            )
            assert got is expected

    def test_unsorted_timeline_matches_reference(self):
        # Only hand-built contexts can be unsorted; the kernel must fall
        # back to the reference interval walk rather than mis-vectorize.
        strong = dbm_to_mw(-58.0)
        timeline = tuple(
            [(0, 0.0)]
            + [(off, strong if off % 100_000 else 0.0) for off in
               (900_000, 100_000, 500_000, 300_000, 700_000) * 3]
        )
        assert len(timeline) >= VECTOR_CUTOFF
        context = make_context(PLANS[0], -60.0, timeline)
        expected = SinrThresholdReception(kernel="python").evaluate(
            context, RADIO, random.Random(0)
        )
        got = SinrThresholdReception(kernel="numpy").evaluate(
            context, RADIO, random.Random(0)
        )
        assert got is expected

    def test_below_sensitivity_short_circuits_identically(self):
        weak = RADIO.sensitivity_dbm[Rate.MBPS_11] - 1.0
        context = make_context(PLANS[0], weak, ((0, 0.0),))
        for kernel in ("python", "numpy"):
            outcome = SinrThresholdReception(kernel=kernel).evaluate(
                context, RADIO, random.Random(0)
            )
            assert outcome is ReceptionOutcome.BELOW_SENSITIVITY


class TestBerBitIdentity:
    @settings(max_examples=150, deadline=None)
    @given(
        plan_index=st.integers(min_value=0, max_value=len(PLANS) - 1),
        rx_power_dbm=st.sampled_from(RX_POWERS_DBM),
        timeline=timelines(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_cached_tables_match_reference(
        self, plan_index, rx_power_dbm, timeline, seed
    ):
        # The memoized success-probability tables must not perturb the
        # Bernoulli draw: same seed, same outcome, same RNG consumption.
        plan = PLANS[plan_index]
        context = make_context(plan, rx_power_dbm, timeline)
        rng_ref, rng_fast = random.Random(seed), random.Random(seed)
        expected = BerReception(kernel="python").evaluate(context, RADIO, rng_ref)
        got = BerReception(kernel="numpy").evaluate(context, RADIO, rng_fast)
        assert got is expected
        assert rng_ref.random() == rng_fast.random()  # same draw count
