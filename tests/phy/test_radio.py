"""Tests for radio parameter presets and range calibration."""

import pytest

from repro.channel.propagation import LogDistancePathLoss, TwoRayGroundPathLoss
from repro.channel.ranges import compute_range_table
from repro.core.params import ALL_RATES, Rate
from repro.errors import ConfigurationError
from repro.phy.radio import (
    CALIBRATED_CS_RANGE_M,
    CALIBRATED_DATA_RANGES_M,
    RadioParameters,
)


class TestCalibratedPreset:
    def test_covers_all_rates(self):
        radio = RadioParameters.calibrated()
        for rate in ALL_RATES:
            assert rate in radio.sensitivity_dbm

    def test_sensitivity_monotone_in_rate(self):
        # Faster modulations need more power: sensitivity rises with rate.
        radio = RadioParameters.calibrated()
        ordered = [radio.sensitivity_dbm[r] for r in ALL_RATES]
        assert ordered == sorted(ordered)

    def test_ranges_match_table3_bands(self):
        """The calibrated radio reproduces the paper's Table 3."""
        radio = RadioParameters.calibrated()
        table = compute_range_table(
            LogDistancePathLoss.calibrated(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        # Paper Table 3: 30 / 70 / 90-100 / 110-130 m.
        assert table.data_tx_range_m[Rate.MBPS_11] == pytest.approx(31.0, abs=1.0)
        assert table.data_tx_range_m[Rate.MBPS_5_5] == pytest.approx(69.0, abs=1.0)
        assert 90.0 <= table.data_tx_range_m[Rate.MBPS_2] <= 100.0
        assert 110.0 <= table.data_tx_range_m[Rate.MBPS_1] <= 130.0

    def test_control_ranges_match_table3(self):
        radio = RadioParameters.calibrated()
        table = compute_range_table(
            LogDistancePathLoss.calibrated(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        # Paper Table 3: control ranges ~90 m (2 Mbps) and ~120 m (1 Mbps).
        assert table.control_tx_range_m[Rate.MBPS_2] == pytest.approx(92.0, abs=4.0)
        assert table.control_tx_range_m[Rate.MBPS_1] == pytest.approx(115.0, abs=8.0)

    def test_cs_range_is_calibration_target(self):
        radio = RadioParameters.calibrated()
        table = compute_range_table(
            LogDistancePathLoss.calibrated(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        assert table.carrier_sense_range_m == pytest.approx(
            CALIBRATED_CS_RANGE_M, abs=1.0
        )

    def test_ranges_shorter_than_simulator_folklore(self):
        """Paper §3.2: measured ranges are 2-3x below the ns-2 250 m."""
        for rate, range_m in CALIBRATED_DATA_RANGES_M.items():
            assert range_m < 250.0 / 2


class TestNs2Preset:
    def test_reproduces_250m_tx_range(self):
        radio = RadioParameters.ns2_default()
        table = compute_range_table(
            TwoRayGroundPathLoss(),
            radio.tx_power_dbm,
            radio.sensitivity_dbm,
            radio.cs_threshold_dbm,
        )
        for rate in ALL_RATES:
            assert table.data_tx_range_m[rate] == pytest.approx(250.0, abs=1.0)
        assert table.carrier_sense_range_m == pytest.approx(550.0, abs=1.0)

    def test_same_range_at_every_rate(self):
        radio = RadioParameters.ns2_default()
        values = set(radio.sensitivity_dbm.values())
        assert len(values) == 1


class TestValidation:
    def test_missing_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioParameters(
                tx_power_dbm=15.0,
                sensitivity_dbm={Rate.MBPS_11: -77.0},
                cs_threshold_dbm=-95.0,
                preamble_lock_dbm=-94.0,
            )

    def test_rx_power_helper(self):
        radio = RadioParameters.calibrated()
        propagation = LogDistancePathLoss.calibrated()
        at_10m = radio.rx_power_dbm_at(propagation, 10.0)
        at_100m = radio.rx_power_dbm_at(propagation, 100.0)
        assert at_10m > at_100m
        # One decade at exponent 3.5 = 35 dB.
        assert at_10m - at_100m == pytest.approx(35.0)
