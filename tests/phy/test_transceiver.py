"""Integration tests of the transceiver over a real medium."""

import random

import pytest

from repro.channel.medium import Medium
from repro.channel.shadowing import ChannelModel
from repro.core.airtime import AirtimeCalculator
from repro.core.params import Rate
from repro.errors import MacError
from repro.phy.plans import control_frame_plan, data_frame_plan
from repro.phy.radio import RadioParameters
from repro.phy.reception import ReceptionOutcome
from repro.phy.transceiver import PhyListener, PhyState, Transceiver
from repro.sim.engine import Simulator


class Probe(PhyListener):
    """Records every PHY callback with its time."""

    def __init__(self, sim):
        self._sim = sim
        self.events = []

    def on_cs_busy(self):
        self.events.append((self._sim.now_ns, "cs_busy"))

    def on_cs_idle(self):
        self.events.append((self._sim.now_ns, "cs_idle"))

    def on_rx_start(self):
        self.events.append((self._sim.now_ns, "rx_start"))

    def on_rx_end(self, mac_frame, outcome):
        self.events.append((self._sim.now_ns, "rx_end", mac_frame, outcome))

    def on_tx_end(self):
        self.events.append((self._sim.now_ns, "tx_end"))

    def names(self):
        return [event[1] for event in self.events]


def make_network(*distances_m, seed=3):
    """A sim + medium + one transceiver per position, with probes."""
    sim = Simulator()
    channel = ChannelModel(fast_sigma_db=0.0, rng=random.Random(seed))
    medium = Medium(sim, channel)
    radio = RadioParameters.calibrated()
    airtime = AirtimeCalculator()
    stations = []
    for index, x in enumerate(distances_m):
        phy = Transceiver(
            sim,
            medium,
            radio,
            name=f"s{index}",
            position_m=(float(x), 0.0),
            rng=random.Random(seed + index),
        )
        probe = Probe(sim)
        phy.set_listener(probe)
        stations.append((phy, probe))
    return sim, medium, airtime, stations


class TestTransmitReceive:
    def test_nearby_station_decodes_data_frame(self):
        sim, _, airtime, stations = make_network(0, 10)
        (tx, tx_probe), (rx, rx_probe) = stations
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        tx.transmit(plan, mac_frame="hello")
        sim.run()
        assert "tx_end" in tx_probe.names()
        rx_end = [e for e in rx_probe.events if e[1] == "rx_end"]
        assert len(rx_end) == 1
        assert rx_end[0][2] == "hello"
        assert rx_end[0][3] is ReceptionOutcome.OK

    def test_station_beyond_range_gets_nothing(self):
        sim, _, airtime, stations = make_network(0, 200)
        (tx, _), (rx, rx_probe) = stations
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        tx.transmit(plan, mac_frame="hello")
        sim.run()
        assert "rx_end" not in rx_probe.names()
        assert "cs_busy" not in rx_probe.names()

    def test_payload_rate_limits_decoding_but_not_following(self):
        # At 60 m an 11 Mbps payload is undecodable (range 31 m) but the
        # PLCP locks and the MAC hears an erroneous frame.
        sim, _, airtime, stations = make_network(0, 60)
        (tx, _), (rx, rx_probe) = stations
        plan = data_frame_plan(540, Rate.MBPS_11, airtime)
        tx.transmit(plan, mac_frame="fast")
        sim.run()
        rx_end = [e for e in rx_probe.events if e[1] == "rx_end"]
        assert rx_end[0][2] is None
        assert rx_end[0][3] is ReceptionOutcome.BELOW_SENSITIVITY

    def test_same_distance_2_mbps_decodes(self):
        sim, _, airtime, stations = make_network(0, 60)
        (tx, _), (rx, rx_probe) = stations
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        tx.transmit(plan, mac_frame="slow")
        sim.run()
        rx_end = [e for e in rx_probe.events if e[1] == "rx_end"]
        assert rx_end[0][2] == "slow"

    def test_transmitter_goes_busy_then_idle(self):
        sim, _, airtime, stations = make_network(0, 10)
        (tx, tx_probe), _ = stations
        plan = control_frame_plan("ack", 112, airtime)
        duration = tx.transmit(plan, mac_frame="ack")
        assert tx.state is PhyState.TX
        assert tx.cs_busy
        sim.run()
        assert tx.state is PhyState.IDLE
        assert not tx.cs_busy
        assert (duration, "tx_end") in [(e[0], e[1]) for e in tx_probe.events]

    def test_receiver_cs_tracks_signal(self):
        sim, _, airtime, stations = make_network(0, 10)
        (tx, _), (rx, rx_probe) = stations
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        tx.transmit(plan, mac_frame="x")
        sim.run()
        names = rx_probe.names()
        assert names.index("cs_busy") < names.index("cs_idle")
        assert not rx.cs_busy

    def test_transmit_while_transmitting_is_an_error(self):
        sim, _, airtime, stations = make_network(0, 10)
        (tx, _), _ = stations
        plan = control_frame_plan("ack", 112, airtime)
        tx.transmit(plan, mac_frame="a")
        with pytest.raises(MacError):
            tx.transmit(plan, mac_frame="b")


class TestCollisions:
    def test_two_overlapping_transmissions_collide_at_receiver(self):
        # Senders 40 m either side of the receiver, transmitting at the
        # same instant at 2 Mbps: comparable powers, SINR ~0 dB, loss.
        sim, _, airtime, stations = make_network(0, 40, 80)
        (a, _), (rx, rx_probe), (b, _) = stations
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        a.transmit(plan, mac_frame="from-a")
        b.transmit(plan, mac_frame="from-b")
        sim.run()
        decoded = [e[2] for e in rx_probe.events if e[1] == "rx_end"]
        assert decoded in ([None], [])  # either failed lock or failed SINR

    def test_hidden_terminal_interference_mid_frame(self):
        # B starts halfway through A's frame: the receiver locked on A,
        # then B's comparable power destroys the payload.
        sim, _, airtime, stations = make_network(0, 40, 80)
        (a, _), (rx, rx_probe), (b, _) = stations
        plan = data_frame_plan(1052, Rate.MBPS_2, airtime)
        a.transmit(plan, mac_frame="from-a")
        sim.schedule(plan.duration_ns // 2, b.transmit, plan, "from-b")
        sim.run()
        rx_ends = [e for e in rx_probe.events if e[1] == "rx_end"]
        assert rx_ends[0][2] is None
        assert rx_ends[0][3] is ReceptionOutcome.SINR_FAILURE

    def test_far_interferer_does_not_destroy_frame(self):
        # Interferer at 150 m from the receiver while the sender is 10 m
        # away: SINR stays high and the frame survives.
        sim, _, airtime, stations = make_network(0, 10, 160)
        (a, _), (rx, rx_probe), (b, _) = stations
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        a.transmit(plan, mac_frame="near")
        b.transmit(plan, mac_frame="far")
        sim.run()
        decoded = [e[2] for e in rx_probe.events if e[1] == "rx_end"]
        assert decoded == ["near"]

    def test_half_duplex_transmitter_misses_frames(self):
        sim, _, airtime, stations = make_network(0, 10)
        (a, a_probe), (b, _) = stations
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        # Both transmit simultaneously: neither can receive the other.
        a.transmit(plan, mac_frame="from-a")
        b.transmit(plan, mac_frame="from-b")
        sim.run()
        assert "rx_start" not in a_probe.names()


class TestCapture:
    def _capture_radio(self, enabled):
        return RadioParameters.calibrated(
            capture_enabled=enabled, capture_margin_db=10.0
        )

    def test_stronger_late_frame_captures_during_preamble(self):
        sim = Simulator()
        channel = ChannelModel(fast_sigma_db=0.0, rng=random.Random(5))
        medium = Medium(sim, channel)
        airtime = AirtimeCalculator()
        radio = self._capture_radio(True)
        rx = Transceiver(sim, medium, radio, name="rx", position_m=(0.0, 0.0))
        probe = Probe(sim)
        rx.set_listener(probe)
        weak = Transceiver(sim, medium, radio, name="weak", position_m=(80.0, 0.0))
        strong = Transceiver(sim, medium, radio, name="strong", position_m=(5.0, 0.0))
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        weak.transmit(plan, mac_frame="weak")
        # 50 us later (inside the 192 us preamble) the strong one starts.
        sim.schedule(50_000, strong.transmit, plan, "strong")
        sim.run()
        decoded = [e[2] for e in probe.events if e[1] == "rx_end" and e[2]]
        assert decoded == ["strong"]

    def test_capture_disabled_keeps_first_lock(self):
        sim = Simulator()
        channel = ChannelModel(fast_sigma_db=0.0, rng=random.Random(5))
        medium = Medium(sim, channel)
        airtime = AirtimeCalculator()
        radio = self._capture_radio(False)
        rx = Transceiver(sim, medium, radio, name="rx", position_m=(0.0, 0.0))
        probe = Probe(sim)
        rx.set_listener(probe)
        weak = Transceiver(sim, medium, radio, name="weak", position_m=(80.0, 0.0))
        strong = Transceiver(sim, medium, radio, name="strong", position_m=(5.0, 0.0))
        plan = data_frame_plan(540, Rate.MBPS_2, airtime)
        weak.transmit(plan, mac_frame="weak")
        sim.schedule(50_000, strong.transmit, plan, "strong")
        sim.run()
        decoded = [e[2] for e in probe.events if e[1] == "rx_end" and e[2]]
        # The weak frame is obliterated by the strong one and no capture
        # rescue is allowed: nothing decodes.
        assert decoded == []
