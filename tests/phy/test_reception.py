"""Tests for the reception models."""

import random

import pytest

from repro.core.airtime import AirtimeCalculator
from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.phy.plans import data_frame_plan
from repro.phy.radio import RadioParameters
from repro.phy.reception import (
    BerReception,
    ReceptionContext,
    ReceptionOutcome,
    SinrThresholdReception,
)
from repro.units import dbm_to_mw


@pytest.fixture
def radio():
    return RadioParameters.calibrated()


@pytest.fixture
def plan():
    return data_frame_plan(540, Rate.MBPS_11, AirtimeCalculator())


def make_context(plan, rx_power_dbm, radio, timeline=None):
    return ReceptionContext(
        plan=plan,
        rx_power_dbm=rx_power_dbm,
        noise_mw=dbm_to_mw(radio.noise_floor_dbm),
        interference_timeline=timeline if timeline is not None else ((0, 0.0),),
    )


class TestContext:
    def test_timeline_must_start_at_zero(self, plan, radio):
        with pytest.raises(ConfigurationError):
            make_context(plan, -60.0, radio, timeline=((5, 0.0),))

    def test_timeline_must_not_be_empty(self, plan, radio):
        with pytest.raises(ConfigurationError):
            ReceptionContext(plan, -60.0, 1e-10, ())

    def test_interference_intervals_clip_to_window(self, plan, radio):
        ctx = make_context(
            plan, -60.0, radio, timeline=((0, 0.0), (1000, 5.0), (2000, 0.0))
        )
        intervals = ctx.interference_intervals(500, 1500)
        assert intervals == [(500, 1000, 0.0), (1000, 1500, 5.0)]

    def test_last_entry_extends_to_end(self, plan, radio):
        ctx = make_context(plan, -60.0, radio, timeline=((0, 2.0),))
        intervals = ctx.interference_intervals(0, plan.duration_ns)
        assert intervals == [(0, plan.duration_ns, 2.0)]


class TestSinrThresholdReception:
    def test_clean_strong_frame_decodes(self, plan, radio):
        model = SinrThresholdReception()
        ctx = make_context(plan, -60.0, radio)
        assert model.evaluate(ctx, radio, random.Random(0)) is ReceptionOutcome.OK

    def test_weak_payload_fails_sensitivity(self, plan, radio):
        # Strong enough for PLCP (1 Mbps) and header (2 Mbps) but below
        # the 11 Mbps payload sensitivity: the frame is followed but lost.
        model = SinrThresholdReception()
        weak = radio.sensitivity_dbm[Rate.MBPS_11] - 3.0
        ctx = make_context(plan, weak, radio)
        outcome = model.evaluate(ctx, radio, random.Random(0))
        assert outcome is ReceptionOutcome.BELOW_SENSITIVITY

    def test_interference_burst_kills_frame(self, plan, radio):
        model = SinrThresholdReception()
        signal_mw = dbm_to_mw(-60.0)
        # Interference as strong as the signal arrives mid-payload.
        ctx = make_context(
            plan,
            -60.0,
            radio,
            timeline=((0, 0.0), (plan.preamble_end_ns + 1000, signal_mw)),
        )
        outcome = model.evaluate(ctx, radio, random.Random(0))
        assert outcome is ReceptionOutcome.SINR_FAILURE

    def test_weak_interference_is_harmless(self, plan, radio):
        model = SinrThresholdReception()
        # 40 dB below the signal: SINR stays far above any threshold.
        ctx = make_context(
            plan, -60.0, radio, timeline=((0, dbm_to_mw(-100.0)),)
        )
        assert model.evaluate(ctx, radio, random.Random(0)) is ReceptionOutcome.OK

    def test_interference_ending_before_payload_is_forgiven(self, plan, radio):
        model = SinrThresholdReception()
        strong = dbm_to_mw(-55.0)
        # A blast during the PLCP only: the PLCP SINR check fails, so the
        # frame is lost.  (The transceiver would not even have locked, but
        # the model must be consistent on its own.)
        ctx = make_context(
            plan, -60.0, radio, timeline=((0, strong), (plan.preamble_end_ns, 0.0))
        )
        assert (
            model.evaluate(ctx, radio, random.Random(0))
            is ReceptionOutcome.SINR_FAILURE
        )


class TestBerReception:
    def test_strong_frame_almost_always_decodes(self, plan, radio):
        model = BerReception()
        rng = random.Random(1)
        ctx = make_context(plan, -60.0, radio)
        outcomes = [model.evaluate(ctx, radio, rng) for _ in range(50)]
        assert all(o is ReceptionOutcome.OK for o in outcomes)

    def test_interference_equal_to_signal_mostly_fails(self, plan, radio):
        model = BerReception()
        rng = random.Random(1)
        ctx = make_context(plan, -60.0, radio, timeline=((0, dbm_to_mw(-60.0)),))
        outcomes = [model.evaluate(ctx, radio, rng) for _ in range(50)]
        failures = sum(o is ReceptionOutcome.BER_FAILURE for o in outcomes)
        assert failures > 40

    def test_loss_rate_monotone_in_interference(self, plan, radio):
        model = BerReception()

        def loss_rate(interference_dbm):
            rng = random.Random(7)
            ctx = make_context(
                plan, -60.0, radio, timeline=((0, dbm_to_mw(interference_dbm)),)
            )
            outcomes = [model.evaluate(ctx, radio, rng) for _ in range(200)]
            return sum(not o.success for o in outcomes) / len(outcomes)

        rates = [loss_rate(dbm) for dbm in (-75.0, -71.0, -67.0, -63.0)]
        assert rates[0] <= rates[-1]
        assert rates[-1] > 0.5
